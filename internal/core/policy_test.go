package core

import (
	"math"
	"strings"
	"testing"
)

func TestBuiltinPolicyParameters(t *testing.T) {
	g := Greedy()
	if !math.IsInf(g.PaybackThreshold, 1) || g.MinProcImprovement != 0 ||
		g.MinAppImprovement != 0 || g.HistoryWindow != 0 {
		t.Fatalf("greedy parameters wrong: %+v", g)
	}
	s := Safe()
	if s.PaybackThreshold != 0.5 || s.MinProcImprovement != 0.20 ||
		s.MinAppImprovement != 0 || s.HistoryWindow != 300 {
		t.Fatalf("safe parameters wrong: %+v", s)
	}
	f := Friendly()
	if !math.IsInf(f.PaybackThreshold, 1) || f.MinProcImprovement != 0 ||
		f.MinAppImprovement != 0.02 || f.HistoryWindow != 60 {
		t.Fatalf("friendly parameters wrong: %+v", f)
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"greedy", "safe", "friendly"} {
		p, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("Named(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := Named("bogus"); err == nil {
		t.Fatal("Named(bogus) did not error")
	}
}

func TestValidate(t *testing.T) {
	good := Greedy()
	if err := good.Validate(); err != nil {
		t.Fatalf("greedy invalid: %v", err)
	}
	bad := []Policy{
		{PaybackThreshold: -1},
		{MinProcImprovement: -0.1},
		{MinAppImprovement: -0.1},
		{HistoryWindow: -5},
		{PaybackThreshold: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	s := Safe().String()
	if !strings.Contains(s, "safe") || !strings.Contains(s, "20") {
		t.Fatalf("String = %q", s)
	}
}
