package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's worked example: iteration time and swap time both 10
// seconds. Doubling performance pays back in 2 iterations; quadrupling in
// 1⅓ — payback is deliberately not linear in the speedup.
func ExamplePaybackDistance() {
	fmt.Printf("%.2f\n", core.PaybackDistance(10, 10, 1, 2))
	fmt.Printf("%.2f\n", core.PaybackDistance(10, 10, 1, 4))
	// Output:
	// 2.00
	// 1.33
}

// A swap decision: the slowest active processor takes the fastest spare,
// provided every gate of the policy passes.
func ExamplePolicy_Decide() {
	pol := core.Greedy()
	swaps := pol.Decide(core.DecideInput{
		Active: []core.Candidate{
			{ID: 0, Rate: 100e6},
			{ID: 1, Rate: 400e6},
		},
		Spare: []core.Candidate{
			{ID: 7, Rate: 650e6},
		},
		IterTime: 120,
		SwapTime: 0.17,
	})
	for _, s := range swaps {
		fmt.Printf("move rank on host %d to host %d (gain %.0f%%, payback %.4f iters)\n",
			s.Out.ID, s.In.ID, s.ProcGain*100, s.Payback)
	}
	// Output:
	// move rank on host 0 to host 7 (gain 550%, payback 0.0017 iters)
}

// The safe policy refuses the same swap when the state is so large that
// the cost cannot be recovered within half an iteration.
func ExamplePolicy_Decide_safe() {
	in := core.DecideInput{
		Active:   []core.Candidate{{ID: 0, Rate: 100e6}},
		Spare:    []core.Candidate{{ID: 7, Rate: 650e6}},
		IterTime: 120,
		SwapTime: 167, // a 1 GB process over a 6 MB/s link
	}
	fmt.Println("greedy swaps:", len(core.Greedy().Decide(in)))
	fmt.Println("safe swaps:  ", len(core.Safe().Decide(in)))
	// Output:
	// greedy swaps: 1
	// safe swaps:   0
}
