package core

import (
	"fmt"
	"math"
)

// Policy is a point in the paper's swapping-policy parameter space
// (Section 4.1). All four knobs gate whether a proposed swap is allowed:
//
//   - PaybackThreshold: a swap is allowed only if its payback distance is
//     at most this many iterations. Smaller values are more risk-averse;
//     +Inf disables the check.
//   - MinProcImprovement: the swapped process's predicted performance gain
//     must exceed this fraction ("swapping stiction").
//   - MinAppImprovement: the whole application's predicted performance
//     gain must exceed this fraction, preventing needless hoarding of
//     fast processors. Zero disables the check (the paper's greedy and
//     safe policies have "no minimum application improvement threshold").
//   - HistoryWindow: how many seconds of performance history feed the
//     per-host performance prediction ("swap frequency damping"). Zero
//     means instantaneous measurements only.
type Policy struct {
	Name               string
	PaybackThreshold   float64 // iterations
	MinProcImprovement float64 // fraction, e.g. 0.2 = 20%
	MinAppImprovement  float64 // fraction
	HistoryWindow      float64 // seconds
}

// Greedy returns the paper's greedy policy: infinite payback threshold,
// no improvement thresholds, no history. It "swaps processes if there is
// any indication that application performance will increase".
func Greedy() Policy {
	return Policy{
		Name:             "greedy",
		PaybackThreshold: math.Inf(1),
	}
}

// Safe returns the paper's safe policy: low payback threshold (0.5
// iterations), high minimum process improvement (20%), no application
// threshold, and a large amount of history (5 minutes). It swaps "only if
// the benefit is significant and the potential downside to the
// application is minimal".
func Safe() Policy {
	return Policy{
		Name:               "safe",
		PaybackThreshold:   0.5,
		MinProcImprovement: 0.20,
		HistoryWindow:      300,
	}
}

// Friendly returns the paper's friendly policy: no process threshold, a
// slight overall application improvement threshold (2%), and a moderate
// amount of history (1 minute). It "promotes application performance, but
// judiciously uses compute resources".
func Friendly() Policy {
	return Policy{
		Name:              "friendly",
		PaybackThreshold:  math.Inf(1),
		MinAppImprovement: 0.02,
		HistoryWindow:     60,
	}
}

// Named returns the built-in policy with the given name.
func Named(name string) (Policy, error) {
	switch name {
	case "greedy":
		return Greedy(), nil
	case "safe":
		return Safe(), nil
	case "friendly":
		return Friendly(), nil
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q (want greedy, safe or friendly)", name)
}

// Validate checks the parameters are in range.
func (p Policy) Validate() error {
	if p.PaybackThreshold < 0 || math.IsNaN(p.PaybackThreshold) {
		return fmt.Errorf("core: policy %q: payback threshold %g", p.Name, p.PaybackThreshold)
	}
	if p.MinProcImprovement < 0 || p.MinAppImprovement < 0 {
		return fmt.Errorf("core: policy %q: negative improvement threshold", p.Name)
	}
	if p.HistoryWindow < 0 {
		return fmt.Errorf("core: policy %q: negative history window", p.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	return fmt.Sprintf("%s{payback<=%g, proc>%g%%, app>%g%%, history=%gs}",
		p.Name, p.PaybackThreshold, p.MinProcImprovement*100,
		p.MinAppImprovement*100, p.HistoryWindow)
}
