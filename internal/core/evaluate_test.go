package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEvaluatePairBasics(t *testing.T) {
	pol := Greedy()
	rates := []float64{100, 300}
	pair, ok := pol.EvaluatePair(
		Candidate{ID: 0, Rate: 100}, Candidate{ID: 9, Rate: 200},
		rates, 0, 60, 1, nil)
	if !ok {
		t.Fatal("beneficial pair rejected")
	}
	if pair.ProcGain != 1.0 {
		t.Fatalf("ProcGain = %g", pair.ProcGain)
	}
	// App perf: bottleneck 100 -> 200 (other member at 300): gain 100%.
	if math.Abs(pair.AppGain-1.0) > 1e-12 {
		t.Fatalf("AppGain = %g", pair.AppGain)
	}
	if rates[0] != 100 {
		t.Fatal("EvaluatePair mutated rates")
	}
}

func TestEvaluatePairRejectsSlowerSpare(t *testing.T) {
	pol := Greedy()
	if _, ok := pol.EvaluatePair(
		Candidate{ID: 0, Rate: 100}, Candidate{ID: 1, Rate: 100},
		[]float64{100}, 0, 60, 1, nil); ok {
		t.Fatal("equal-rate pair accepted")
	}
}

func TestEvaluatePairGates(t *testing.T) {
	rates := []float64{100}
	out := Candidate{ID: 0, Rate: 100}
	in := Candidate{ID: 1, Rate: 115}

	// Safe rejects (15% < 20%).
	if _, ok := Safe().EvaluatePair(out, in, rates, 0, 600, 0.1, nil); ok {
		t.Fatal("safe accepted sub-threshold improvement")
	}
	// Friendly at 15% app gain accepts (> 2%).
	if _, ok := Friendly().EvaluatePair(out, in, rates, 0, 600, 0.1, nil); !ok {
		t.Fatal("friendly rejected a 15% bottleneck improvement")
	}
	// Payback gate: swap as long as the iteration with modest gain.
	strict := Policy{Name: "strict", PaybackThreshold: 0.5}
	if _, ok := strict.EvaluatePair(out, in, rates, 0, 60, 60, nil); ok {
		t.Fatal("strict policy accepted slow payback")
	}
}

// Property: Decide's result is exactly the greedy-pairing closure of
// EvaluatePair — k accepted pairs means pair k+1 (if any) fails its gate
// on the updated rates.
func TestDecideConsistentWithEvaluatePair(t *testing.T) {
	st := rng.NewSource(31).Stream("p")
	pols := []Policy{Greedy(), Safe(), Friendly()}
	f := func(nA, nS uint8) bool {
		na := int(nA%6) + 1
		ns := int(nS % 6)
		var active, spare []Candidate
		for i := 0; i < na; i++ {
			active = append(active, Candidate{ID: i, Rate: st.Uniform(50, 800)})
		}
		for i := 0; i < ns; i++ {
			spare = append(spare, Candidate{ID: 100 + i, Rate: st.Uniform(50, 800)})
		}
		iterTime, swapTime := 120.0, 5.0
		for _, pol := range pols {
			got := pol.Decide(DecideInput{
				Active: active, Spare: spare, IterTime: iterTime, SwapTime: swapTime,
			})
			// Rebuild via EvaluatePair over sorted orders.
			a := append([]Candidate(nil), active...)
			s := append([]Candidate(nil), spare...)
			sortCandidatesAsc(a)
			sortCandidatesDesc(s)
			rates := make([]float64, len(a))
			for i, c := range a {
				rates[i] = c.Rate
			}
			var want []SwapPair
			for k := 0; k < len(a) && k < len(s); k++ {
				pair, ok := pol.EvaluatePair(a[k], s[k], rates, k, iterTime, swapTime, nil)
				if !ok {
					break
				}
				want = append(want, pair)
				rates[k] = s[k].Rate
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortCandidatesAsc(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func sortCandidatesDesc(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessDesc(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func less(a, b Candidate) bool {
	if a.Rate != b.Rate {
		return a.Rate < b.Rate
	}
	return a.ID < b.ID
}

func lessDesc(a, b Candidate) bool {
	if a.Rate != b.Rate {
		return a.Rate > b.Rate
	}
	return a.ID < b.ID
}
