// Package core implements the contribution of the paper: the payback
// algebra for MPI process swapping, the parameterized space of swapping
// policies, the three concrete policies (greedy, safe, friendly), and the
// decision engines that turn per-host performance estimates into swap or
// relocation decisions.
package core

import (
	"fmt"
	"math"
)

// PaybackDistance computes the paper's payback metric (Section 5): the
// number of iterations, at the increased post-swap performance rate,
// required to recover the cost of swapping:
//
//	payback = (swapTime / oldIterTime) * 1 / (1 - oldPerf/newPerf)
//
// The performance arguments may be any measure that increases with
// application performance (e.g. flop rate). Following the paper: a
// negative result means the swap has no benefit (newPerf < oldPerf); a
// positive result is the break-even distance — the larger it is, the
// longer the swap takes to pay off. newPerf == oldPerf yields +Inf (the
// swap never pays for itself). Payback is not linear in the performance
// increase: doubling performance with swapTime == oldIterTime gives 2
// iterations, quadrupling gives 4/3.
func PaybackDistance(swapTime, oldIterTime, oldPerf, newPerf float64) float64 {
	if swapTime < 0 || oldIterTime <= 0 || oldPerf <= 0 || newPerf <= 0 {
		panic(fmt.Sprintf("core: PaybackDistance(%g, %g, %g, %g)",
			swapTime, oldIterTime, oldPerf, newPerf))
	}
	if newPerf == oldPerf {
		return math.Inf(1)
	}
	return (swapTime / oldIterTime) / (1 - oldPerf/newPerf)
}

// SwapTime computes the paper's swap-cost model: transferring the process
// state over a communication link with latency alpha (seconds) and
// bandwidth beta (bytes/s):
//
//	swapTime = alpha + stateBytes/beta
func SwapTime(alpha, beta, stateBytes float64) float64 {
	if beta <= 0 || alpha < 0 || stateBytes < 0 {
		panic(fmt.Sprintf("core: SwapTime(%g, %g, %g)", alpha, beta, stateBytes))
	}
	return alpha + stateBytes/beta
}

// Beneficial reports whether a payback distance indicates a net benefit:
// positive and finite (the paper: "If the payback distance is negative,
// there is no benefit").
func Beneficial(payback float64) bool {
	return payback > 0 && !math.IsInf(payback, 1)
}
