package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDecideRelocationExplainedTable drives every gate of
// DecideRelocationExplained and checks three contracts per row: the
// verdict/reason name the deciding gate (parity with DecideExplained's
// vocabulary), the (ok, payback) pair is bit-identical to what plain
// DecideRelocation returns, and the Explanation stays JSON-encodable —
// the +Inf payback of an impossible relocation must live only in the
// function return, never in the struct.
func TestDecideRelocationExplainedTable(t *testing.T) {
	cases := []struct {
		name         string
		policy       Policy
		in           RelocateInput
		wantOK       bool
		wantVerdict  string
		reasonPrefix string
		wantPayback  float64 // compared when finite; math.Inf(1) asserts +Inf
	}{
		{
			name:         "empty set cannot relocate",
			policy:       Greedy(),
			in:           RelocateInput{IterTime: 10},
			wantVerdict:  "stay",
			reasonPrefix: "no processes to relocate",
			wantPayback:  math.Inf(1),
		},
		{
			name:         "non-positive iteration time",
			policy:       Greedy(),
			in:           RelocateInput{OldRates: []float64{1}, NewRates: []float64{2}},
			wantVerdict:  "stay",
			reasonPrefix: "iteration time",
			wantPayback:  math.Inf(1),
		},
		{
			name:   "new set not faster",
			policy: Greedy(),
			in: RelocateInput{OldRates: []float64{1, 2}, NewRates: []float64{1, 2},
				IterTime: 10, Overhead: 1},
			wantVerdict:  "stay",
			reasonPrefix: "new set performance",
			wantPayback:  math.Inf(1),
		},
		{
			// An aggregate perf model (sum of rates) lets the set look
			// faster while the decisive slowest-old/fastest-new pair gains
			// only 10% — under safe's 20% floor.
			name:   "safe rejects small process gain",
			policy: Safe(),
			in: RelocateInput{OldRates: []float64{1, 1}, NewRates: []float64{1.1, 1},
				IterTime: 10, Overhead: 1,
				AppPerf: func(rates []float64) float64 {
					s := 0.0
					for _, r := range rates {
						s += r
					}
					return s
				}},
			wantVerdict:  "stay",
			reasonPrefix: "process gain",
			wantPayback:  math.Inf(1),
		},
		{
			name:   "safe rejects long payback",
			policy: Safe(),
			in: RelocateInput{OldRates: []float64{1, 2}, NewRates: []float64{2, 2},
				IterTime: 10, Overhead: 100},
			wantVerdict:  "stay",
			reasonPrefix: "payback",
			wantPayback:  20, // (100/10)/(1-1/2)
		},
		{
			name:   "friendly rejects marginal app gain",
			policy: Friendly(),
			in: RelocateInput{OldRates: []float64{1, 2}, NewRates: []float64{1.01, 2},
				IterTime: 10, Overhead: 0.1},
			wantVerdict:  "stay",
			reasonPrefix: "application gain",
		},
		{
			name:   "greedy relocates on any improvement",
			policy: Greedy(),
			in: RelocateInput{OldRates: []float64{1, 2}, NewRates: []float64{2, 2},
				IterTime: 10, Overhead: 1},
			wantOK:       true,
			wantVerdict:  "relocate",
			reasonPrefix: "payback",
			wantPayback:  0.2, // (1/10)/(1-1/2)
		},
		{
			name:   "free relocation always pays",
			policy: Greedy(),
			in: RelocateInput{OldRates: []float64{1}, NewRates: []float64{2},
				IterTime: 10},
			wantOK:       true,
			wantVerdict:  "relocate",
			reasonPrefix: "payback",
			wantPayback:  0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ok, payback, exp := c.policy.DecideRelocationExplained(c.in)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v (reason %q)", ok, c.wantOK, exp.Reason)
			}
			if exp.Verdict != c.wantVerdict {
				t.Fatalf("verdict = %q, want %q", exp.Verdict, c.wantVerdict)
			}
			if !strings.HasPrefix(exp.Reason, c.reasonPrefix) {
				t.Fatalf("reason = %q, want prefix %q", exp.Reason, c.reasonPrefix)
			}
			if math.IsInf(c.wantPayback, 1) {
				if !math.IsInf(payback, 1) {
					t.Fatalf("payback = %g, want +Inf", payback)
				}
				if exp.Payback != 0 {
					t.Fatalf("infinite payback leaked into Explanation: %g", exp.Payback)
				}
			} else if c.wantPayback != 0 && math.Abs(payback-c.wantPayback) > 1e-12 {
				t.Fatalf("payback = %g, want %g", payback, c.wantPayback)
			}

			// Parity: the plain form must be exactly the explained form
			// minus the explanation.
			pok, ppayback := c.policy.DecideRelocation(c.in)
			if pok != ok || !sameFloat(ppayback, payback) {
				t.Fatalf("DecideRelocation = (%v, %g), explained = (%v, %g)",
					pok, ppayback, ok, payback)
			}

			// The explanation rides SwapDecision-style events; it must
			// survive encoding/json, which rejects Inf and NaN.
			if _, err := json.Marshal(exp); err != nil {
				t.Fatalf("explanation not JSON-encodable: %v", err)
			}
		})
	}
}

// sameFloat compares floats treating same-signed infinities as equal.
func sameFloat(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return a == b
}
