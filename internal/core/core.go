package core
