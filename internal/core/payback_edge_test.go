package core

import (
	"math"
	"testing"
)

// TestPaybackEdgeTable pins the contract of PaybackDistance and
// Beneficial together on the algebra's edges: the domain panics, the
// +Inf never-pays-off case, negative distances for regressions, and the
// zero-cost boundary. The policy lens and the offline audit both lean
// on exactly these conventions (a realized payback of "never" and a
// JSON-unsafe +Inf are different encodings of the same edge), so the
// table is the single place the conventions are spelled out.
func TestPaybackEdgeTable(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name                   string
		swap, iter, oldP, newP float64
		wantPanic              bool
		want                   float64
		beneficial             bool
	}{
		{name: "paper doubling", swap: 10, iter: 10, oldP: 1, newP: 2, want: 2, beneficial: true},
		{name: "quadrupling sublinear", swap: 10, iter: 10, oldP: 1, newP: 4, want: 4.0 / 3.0, beneficial: true},
		{name: "equal perf never pays off", swap: 10, iter: 10, oldP: 3, newP: 3, want: inf, beneficial: false},
		{name: "slower target is negative", swap: 10, iter: 10, oldP: 2, newP: 1, want: -1, beneficial: false},
		{name: "free swap breaks even immediately", swap: 0, iter: 10, oldP: 1, newP: 2, want: 0, beneficial: false},
		{name: "negative swap time panics", swap: -1, iter: 10, oldP: 1, newP: 2, wantPanic: true},
		{name: "zero old iteration time panics", swap: 10, iter: 0, oldP: 1, newP: 2, wantPanic: true},
		{name: "negative old iteration time panics", swap: 10, iter: -5, oldP: 1, newP: 2, wantPanic: true},
		{name: "zero old perf panics", swap: 10, iter: 10, oldP: 0, newP: 2, wantPanic: true},
		{name: "zero new perf panics", swap: 10, iter: 10, oldP: 1, newP: 0, wantPanic: true},
		{name: "negative perf panics", swap: 10, iter: 10, oldP: -1, newP: -2, wantPanic: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.wantPanic {
				defer func() {
					if recover() == nil {
						t.Errorf("PaybackDistance(%g, %g, %g, %g) did not panic",
							c.swap, c.iter, c.oldP, c.newP)
					}
				}()
				PaybackDistance(c.swap, c.iter, c.oldP, c.newP)
				return
			}
			got := PaybackDistance(c.swap, c.iter, c.oldP, c.newP)
			if math.IsInf(c.want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("payback = %g, want +Inf", got)
				}
			} else if math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("payback = %g, want %g", got, c.want)
			}
			if b := Beneficial(got); b != c.beneficial {
				t.Fatalf("Beneficial(%g) = %v, want %v", got, b, c.beneficial)
			}
		})
	}
}
