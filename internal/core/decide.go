package core

import (
	"fmt"
	"math"
	"sort"
)

// Candidate is a host (or processor) with its predicted effective
// performance, as estimated by the policy's history window.
type Candidate struct {
	ID   int
	Rate float64 // predicted flop/s (any increasing performance measure)
}

// SwapPair is one accepted swap: move the process off Out's host onto
// In's host.
type SwapPair struct {
	Out, In  Candidate
	ProcGain float64 // fractional process performance gain
	AppGain  float64 // fractional application performance gain
	Payback  float64 // payback distance in iterations
}

// DecideInput carries everything a policy needs to make a swap decision
// at an iteration boundary.
type DecideInput struct {
	Active []Candidate // hosts currently running application processes
	Spare  []Candidate // over-allocated idle hosts
	// IterTime is the application's current iteration time (seconds),
	// the "old iteration time" of the payback formula.
	IterTime float64
	// SwapTime is the predicted cost of one swap (seconds).
	SwapTime float64
	// AppPerf predicts relative application performance for a
	// hypothetical multiset of active-host rates; higher is better. If
	// nil, the bottleneck model is used: performance proportional to the
	// minimum rate, which is exact for equal-size work partitions.
	AppPerf func(rates []float64) float64
}

// Filter returns the candidates for which keep reports true, preserving
// order. The input is not modified; the swap manager uses it to exclude
// quarantined or evicted hosts from the decider's candidate pool.
func Filter(cands []Candidate, keep func(Candidate) bool) []Candidate {
	var out []Candidate
	for _, c := range cands {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

// BottleneckAppPerf is the default application performance model: with
// equal work partitions the iteration time is set by the slowest host, so
// application performance is proportional to the minimum rate.
func BottleneckAppPerf(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, r := range rates {
		if r < m {
			m = r
		}
	}
	return m
}

// Explanation records why a Decide call reached its verdict: the inputs
// the payback algebra saw, the decisive pair's numbers, and which gate
// decided. For an accepted decision the decisive pair is the first (the
// slowest-active/fastest-spare headline swap); for a rejection it is the
// pair the first failing gate stopped on. Observability (internal/obs)
// attaches this to SwapDecision events so traces answer "why did rank k
// swap here?" without rerunning the policy.
type Explanation struct {
	Considered int     `json:"considered"`          // candidate pairs examined
	IterTime   float64 `json:"iter_time"`           // old iteration time (s)
	SwapTime   float64 `json:"swap_time"`           // predicted swap cost (s)
	OldPerf    float64 `json:"old_perf,omitempty"`  // decisive pair: active rate
	NewPerf    float64 `json:"new_perf,omitempty"`  // decisive pair: spare rate
	ProcGain   float64 `json:"proc_gain,omitempty"` // decisive pair: process gain
	AppGain    float64 `json:"app_gain,omitempty"`  // decisive pair: app gain
	Payback    float64 `json:"payback,omitempty"`   // decisive pair: payback distance
	Verdict    string  `json:"verdict"`             // "swap" or "stay"
	Reason     string  `json:"reason"`              // the gate that decided, with numbers
}

// Decide applies the policy to propose swaps, following the paper: "All
// three policies, when they decide to swap, swap the slowest active
// processor(s) for the fastest inactive processor(s)". Pairs are
// considered in that order (slowest active with fastest spare, then
// second-slowest with second-fastest, ...) and each must clear every
// enabled gate:
//
//   - the spare must be predicted strictly faster than the active host;
//   - the process improvement must exceed MinProcImprovement;
//   - the payback distance must be positive and at most PaybackThreshold;
//   - if MinAppImprovement > 0, the application improvement (cumulative
//     over already-accepted pairs) must exceed it.
//
// Consideration stops at the first rejected pair.
func (p Policy) Decide(in DecideInput) []SwapPair {
	out, _ := p.DecideExplained(in)
	return out
}

// DecideExplained is Decide plus an Explanation of the verdict.
func (p Policy) DecideExplained(in DecideInput) ([]SwapPair, Explanation) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if in.IterTime <= 0 {
		panic(fmt.Sprintf("core: Decide with IterTime %g", in.IterTime))
	}
	if in.SwapTime < 0 {
		panic(fmt.Sprintf("core: Decide with SwapTime %g", in.SwapTime))
	}
	appPerf := in.AppPerf
	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}

	active := append([]Candidate(nil), in.Active...)
	spare := append([]Candidate(nil), in.Spare...)
	// Slowest active first; fastest spare first. Ties break by ID so
	// decisions are deterministic.
	sort.Slice(active, func(i, j int) bool {
		if active[i].Rate != active[j].Rate {
			return active[i].Rate < active[j].Rate
		}
		return active[i].ID < active[j].ID
	})
	sort.Slice(spare, func(i, j int) bool {
		if spare[i].Rate != spare[j].Rate {
			return spare[i].Rate > spare[j].Rate
		}
		return spare[i].ID < spare[j].ID
	})

	rates := make([]float64, len(active))
	for i, c := range active {
		rates[i] = c.Rate
	}

	exp := Explanation{IterTime: in.IterTime, SwapTime: in.SwapTime,
		Verdict: "stay", Reason: "no candidate pairs"}
	switch {
	case len(active) == 0:
		exp.Reason = "no active candidates"
	case len(spare) == 0:
		exp.Reason = "no spare candidates"
	}

	var out []SwapPair
	n := len(active)
	if len(spare) < n {
		n = len(spare)
	}
	for k := 0; k < n; k++ {
		pair, ok, reason := p.evaluatePair(active[k], spare[k], rates, k,
			in.IterTime, in.SwapTime, appPerf)
		exp.Considered++
		if !ok {
			// A rejection after accepted pairs keeps the headline swap as
			// the decisive pair; a rejection with none accepted explains
			// the stay.
			if len(out) == 0 {
				exp.fill(pair, reason)
			}
			break
		}
		if len(out) == 0 {
			exp.Verdict = "swap"
			exp.fill(pair, reason)
		}
		out = append(out, pair)
		rates[k] = spare[k].Rate // app gains accumulate over accepted pairs
	}
	return out, exp
}

// fill copies the decisive pair's numbers into the explanation.
func (e *Explanation) fill(pair SwapPair, reason string) {
	e.OldPerf = pair.Out.Rate
	e.NewPerf = pair.In.Rate
	e.ProcGain = pair.ProcGain
	e.AppGain = pair.AppGain
	e.Payback = pair.Payback
	e.Reason = reason
}

// EvaluatePair applies the policy's gates to one specific candidate swap:
// replacing the active host at index idx of rates (which must equal
// out.Rate) with the spare `in`. It returns the accepted pair and true,
// or false if any gate rejects. This is the primitive both Decide and the
// selection-rule ablation build on; rates is not modified.
func (p Policy) EvaluatePair(out, in Candidate, rates []float64, idx int,
	iterTime, swapTime float64, appPerf func([]float64) float64) (SwapPair, bool) {

	pair, ok, _ := p.evaluatePair(out, in, rates, idx, iterTime, swapTime, appPerf)
	if !ok {
		return SwapPair{}, false
	}
	return pair, true
}

// evaluatePair is EvaluatePair plus the gate verdict in words. On
// rejection the returned pair still carries whatever numbers the gates
// computed before failing, so explanations can show them.
func (p Policy) evaluatePair(out, in Candidate, rates []float64, idx int,
	iterTime, swapTime float64, appPerf func([]float64) float64) (SwapPair, bool, string) {

	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}
	pair := SwapPair{Out: out, In: in}
	if in.Rate <= out.Rate {
		return pair, false, fmt.Sprintf("spare rate %.4g not above active rate %.4g",
			in.Rate, out.Rate)
	}
	pair.ProcGain = in.Rate/out.Rate - 1
	if pair.ProcGain <= p.MinProcImprovement {
		return pair, false, fmt.Sprintf("process gain %.3g <= minimum %.3g",
			pair.ProcGain, p.MinProcImprovement)
	}
	pair.Payback = PaybackDistance(swapTime, iterTime, out.Rate, in.Rate)
	if pair.Payback > p.PaybackThreshold {
		return pair, false, fmt.Sprintf("payback %.3g iterations > threshold %.3g",
			pair.Payback, p.PaybackThreshold)
	}
	oldPerf := appPerf(rates)
	newRates := append([]float64(nil), rates...)
	newRates[idx] = in.Rate
	newPerf := appPerf(newRates)
	if oldPerf > 0 {
		pair.AppGain = newPerf/oldPerf - 1
	}
	if p.MinAppImprovement > 0 && pair.AppGain <= p.MinAppImprovement {
		return pair, false, fmt.Sprintf("application gain %.3g <= minimum %.3g",
			pair.AppGain, p.MinAppImprovement)
	}
	return pair, true, fmt.Sprintf("payback %.3g iterations within threshold %.3g",
		pair.Payback, p.PaybackThreshold)
}

// RelocateInput describes a proposed whole-application relocation, the
// checkpoint/restart analogue of a swap decision: the paper's CR
// technique decides to checkpoint "based on the same criteria used to
// evaluate process swapping decisions", except that the whole application
// pays one combined overhead and every process may move.
type RelocateInput struct {
	// OldRates and NewRates are the predicted rates of the current and
	// proposed host sets (equal lengths).
	OldRates, NewRates []float64
	IterTime           float64 // current iteration time (seconds)
	Overhead           float64 // total checkpoint+restart+reload cost (seconds)
	AppPerf            func(rates []float64) float64
}

// DecideRelocation reports whether the policy allows the relocation, and
// the application-level payback distance of doing it.
func (p Policy) DecideRelocation(in RelocateInput) (ok bool, payback float64) {
	ok, payback, _ = p.DecideRelocationExplained(in)
	return ok, payback
}

// DecideRelocationExplained is DecideRelocation plus an Explanation of
// the verdict, bringing relocation decisions to parity with
// DecideExplained so the audit trail sees why a checkpoint/restart move
// was (or was not) taken. The returned payback keeps the historical
// +Inf convention for impossible relocations; the Explanation stores
// only finite numbers (Payback stays zero when the distance is
// infinite) so it remains JSON-encodable.
func (p Policy) DecideRelocationExplained(in RelocateInput) (ok bool, payback float64, exp Explanation) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(in.OldRates) != len(in.NewRates) {
		panic(fmt.Sprintf("core: DecideRelocation with %d old vs %d new rates",
			len(in.OldRates), len(in.NewRates)))
	}
	exp = Explanation{IterTime: in.IterTime, SwapTime: in.Overhead, Verdict: "stay"}
	if len(in.OldRates) == 0 {
		exp.Reason = "no processes to relocate"
		return false, math.Inf(1), exp
	}
	if in.IterTime <= 0 {
		exp.Reason = fmt.Sprintf("iteration time %.4g not positive", in.IterTime)
		return false, math.Inf(1), exp
	}
	appPerf := in.AppPerf
	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}
	oldPerf := appPerf(in.OldRates)
	newPerf := appPerf(in.NewRates)
	exp.Considered = 1
	exp.OldPerf = oldPerf
	exp.NewPerf = newPerf
	if newPerf <= oldPerf || oldPerf <= 0 {
		exp.Reason = fmt.Sprintf("new set performance %.4g not above old %.4g",
			newPerf, oldPerf)
		return false, math.Inf(1), exp
	}
	// Per-process gate: pair slowest-old with fastest-new; every changed
	// pair must clear the process threshold, mirroring Decide.
	old := append([]float64(nil), in.OldRates...)
	neu := append([]float64(nil), in.NewRates...)
	sort.Float64s(old)
	sort.Sort(sort.Reverse(sort.Float64Slice(neu)))
	for i := range old {
		if neu[i] <= old[i] {
			break // unchanged or not improved beyond this pairing
		}
		exp.ProcGain = neu[i]/old[i] - 1
		if exp.ProcGain <= p.MinProcImprovement {
			exp.Reason = fmt.Sprintf("process gain %.3g <= minimum %.3g",
				exp.ProcGain, p.MinProcImprovement)
			return false, math.Inf(1), exp
		}
		// Only the first changed pair must clear the threshold for a
		// relocation to be worthwhile at all; further pairs may be
		// unchanged members of the set.
		break
	}
	payback = PaybackDistance(in.Overhead, in.IterTime, oldPerf, newPerf)
	if !math.IsInf(payback, 0) {
		exp.Payback = payback
	}
	exp.AppGain = newPerf/oldPerf - 1
	if in.Overhead > 0 && !Beneficial(payback) {
		exp.Reason = fmt.Sprintf("payback %.3g iterations is not beneficial", payback)
		return false, payback, exp
	}
	if payback > p.PaybackThreshold {
		exp.Reason = fmt.Sprintf("payback %.3g iterations > threshold %.3g",
			payback, p.PaybackThreshold)
		return false, payback, exp
	}
	if p.MinAppImprovement > 0 && exp.AppGain <= p.MinAppImprovement {
		exp.Reason = fmt.Sprintf("application gain %.3g <= minimum %.3g",
			exp.AppGain, p.MinAppImprovement)
		return false, payback, exp
	}
	exp.Verdict = "relocate"
	exp.Reason = fmt.Sprintf("payback %.3g iterations within threshold %.3g",
		payback, p.PaybackThreshold)
	return true, payback, exp
}
