package core

import (
	"fmt"
	"math"
	"sort"
)

// Candidate is a host (or processor) with its predicted effective
// performance, as estimated by the policy's history window.
type Candidate struct {
	ID   int
	Rate float64 // predicted flop/s (any increasing performance measure)
}

// SwapPair is one accepted swap: move the process off Out's host onto
// In's host.
type SwapPair struct {
	Out, In  Candidate
	ProcGain float64 // fractional process performance gain
	AppGain  float64 // fractional application performance gain
	Payback  float64 // payback distance in iterations
}

// DecideInput carries everything a policy needs to make a swap decision
// at an iteration boundary.
type DecideInput struct {
	Active []Candidate // hosts currently running application processes
	Spare  []Candidate // over-allocated idle hosts
	// IterTime is the application's current iteration time (seconds),
	// the "old iteration time" of the payback formula.
	IterTime float64
	// SwapTime is the predicted cost of one swap (seconds).
	SwapTime float64
	// AppPerf predicts relative application performance for a
	// hypothetical multiset of active-host rates; higher is better. If
	// nil, the bottleneck model is used: performance proportional to the
	// minimum rate, which is exact for equal-size work partitions.
	AppPerf func(rates []float64) float64
}

// BottleneckAppPerf is the default application performance model: with
// equal work partitions the iteration time is set by the slowest host, so
// application performance is proportional to the minimum rate.
func BottleneckAppPerf(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, r := range rates {
		if r < m {
			m = r
		}
	}
	return m
}

// Decide applies the policy to propose swaps, following the paper: "All
// three policies, when they decide to swap, swap the slowest active
// processor(s) for the fastest inactive processor(s)". Pairs are
// considered in that order (slowest active with fastest spare, then
// second-slowest with second-fastest, ...) and each must clear every
// enabled gate:
//
//   - the spare must be predicted strictly faster than the active host;
//   - the process improvement must exceed MinProcImprovement;
//   - the payback distance must be positive and at most PaybackThreshold;
//   - if MinAppImprovement > 0, the application improvement (cumulative
//     over already-accepted pairs) must exceed it.
//
// Consideration stops at the first rejected pair.
func (p Policy) Decide(in DecideInput) []SwapPair {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if in.IterTime <= 0 {
		panic(fmt.Sprintf("core: Decide with IterTime %g", in.IterTime))
	}
	if in.SwapTime < 0 {
		panic(fmt.Sprintf("core: Decide with SwapTime %g", in.SwapTime))
	}
	appPerf := in.AppPerf
	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}

	active := append([]Candidate(nil), in.Active...)
	spare := append([]Candidate(nil), in.Spare...)
	// Slowest active first; fastest spare first. Ties break by ID so
	// decisions are deterministic.
	sort.Slice(active, func(i, j int) bool {
		if active[i].Rate != active[j].Rate {
			return active[i].Rate < active[j].Rate
		}
		return active[i].ID < active[j].ID
	})
	sort.Slice(spare, func(i, j int) bool {
		if spare[i].Rate != spare[j].Rate {
			return spare[i].Rate > spare[j].Rate
		}
		return spare[i].ID < spare[j].ID
	})

	rates := make([]float64, len(active))
	for i, c := range active {
		rates[i] = c.Rate
	}

	var out []SwapPair
	n := len(active)
	if len(spare) < n {
		n = len(spare)
	}
	for k := 0; k < n; k++ {
		pair, ok := p.EvaluatePair(active[k], spare[k], rates, k,
			in.IterTime, in.SwapTime, appPerf)
		if !ok {
			break
		}
		out = append(out, pair)
		rates[k] = spare[k].Rate // app gains accumulate over accepted pairs
	}
	return out
}

// EvaluatePair applies the policy's gates to one specific candidate swap:
// replacing the active host at index idx of rates (which must equal
// out.Rate) with the spare `in`. It returns the accepted pair and true,
// or false if any gate rejects. This is the primitive both Decide and the
// selection-rule ablation build on; rates is not modified.
func (p Policy) EvaluatePair(out, in Candidate, rates []float64, idx int,
	iterTime, swapTime float64, appPerf func([]float64) float64) (SwapPair, bool) {

	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}
	if in.Rate <= out.Rate {
		return SwapPair{}, false
	}
	procGain := in.Rate/out.Rate - 1
	if procGain <= p.MinProcImprovement {
		return SwapPair{}, false
	}
	payback := PaybackDistance(swapTime, iterTime, out.Rate, in.Rate)
	if payback > p.PaybackThreshold {
		return SwapPair{}, false
	}
	oldPerf := appPerf(rates)
	newRates := append([]float64(nil), rates...)
	newRates[idx] = in.Rate
	newPerf := appPerf(newRates)
	appGain := 0.0
	if oldPerf > 0 {
		appGain = newPerf/oldPerf - 1
	}
	if p.MinAppImprovement > 0 && appGain <= p.MinAppImprovement {
		return SwapPair{}, false
	}
	return SwapPair{
		Out: out, In: in,
		ProcGain: procGain, AppGain: appGain, Payback: payback,
	}, true
}

// RelocateInput describes a proposed whole-application relocation, the
// checkpoint/restart analogue of a swap decision: the paper's CR
// technique decides to checkpoint "based on the same criteria used to
// evaluate process swapping decisions", except that the whole application
// pays one combined overhead and every process may move.
type RelocateInput struct {
	// OldRates and NewRates are the predicted rates of the current and
	// proposed host sets (equal lengths).
	OldRates, NewRates []float64
	IterTime           float64 // current iteration time (seconds)
	Overhead           float64 // total checkpoint+restart+reload cost (seconds)
	AppPerf            func(rates []float64) float64
}

// DecideRelocation reports whether the policy allows the relocation, and
// the application-level payback distance of doing it.
func (p Policy) DecideRelocation(in RelocateInput) (ok bool, payback float64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(in.OldRates) != len(in.NewRates) {
		panic(fmt.Sprintf("core: DecideRelocation with %d old vs %d new rates",
			len(in.OldRates), len(in.NewRates)))
	}
	if len(in.OldRates) == 0 || in.IterTime <= 0 {
		return false, math.Inf(1)
	}
	appPerf := in.AppPerf
	if appPerf == nil {
		appPerf = BottleneckAppPerf
	}
	oldPerf := appPerf(in.OldRates)
	newPerf := appPerf(in.NewRates)
	if newPerf <= oldPerf || oldPerf <= 0 {
		return false, math.Inf(1)
	}
	// Per-process gate: pair slowest-old with fastest-new; every changed
	// pair must clear the process threshold, mirroring Decide.
	old := append([]float64(nil), in.OldRates...)
	neu := append([]float64(nil), in.NewRates...)
	sort.Float64s(old)
	sort.Sort(sort.Reverse(sort.Float64Slice(neu)))
	for i := range old {
		if neu[i] <= old[i] {
			break // unchanged or not improved beyond this pairing
		}
		if neu[i]/old[i]-1 <= p.MinProcImprovement {
			return false, math.Inf(1)
		}
		// Only the first changed pair must clear the threshold for a
		// relocation to be worthwhile at all; further pairs may be
		// unchanged members of the set.
		break
	}
	payback = PaybackDistance(in.Overhead, in.IterTime, oldPerf, newPerf)
	if in.Overhead > 0 && !Beneficial(payback) {
		return false, payback
	}
	if payback > p.PaybackThreshold {
		return false, payback
	}
	appGain := newPerf/oldPerf - 1
	if p.MinAppImprovement > 0 && appGain <= p.MinAppImprovement {
		return false, payback
	}
	return true, payback
}
