package core

import (
	"strings"
	"testing"
)

// TestDecideExplainedSwap: an accepted decision explains itself with the
// headline pair's payback numbers and a "swap" verdict.
func TestDecideExplainedSwap(t *testing.T) {
	in := DecideInput{
		Active:   cands(100, 200),
		Spare:    []Candidate{{ID: 10, Rate: 400}},
		IterTime: 60,
		SwapTime: 1,
	}
	swaps, exp := Safe().DecideExplained(in)
	if len(swaps) != 1 {
		t.Fatalf("got %d swaps, want 1", len(swaps))
	}
	if exp.Verdict != "swap" {
		t.Fatalf("verdict %q, want swap: %+v", exp.Verdict, exp)
	}
	if exp.OldPerf != 100 || exp.NewPerf != 400 {
		t.Fatalf("decisive pair rates = %g/%g, want 100/400", exp.OldPerf, exp.NewPerf)
	}
	if exp.Payback != swaps[0].Payback || exp.Payback <= 0 {
		t.Fatalf("payback %g, want %g", exp.Payback, swaps[0].Payback)
	}
	if exp.IterTime != 60 || exp.SwapTime != 1 || exp.Considered != 1 {
		t.Fatalf("inputs not echoed: %+v", exp)
	}
	if !strings.Contains(exp.Reason, "payback") {
		t.Fatalf("reason %q does not name the gate", exp.Reason)
	}
	// Decide stays the thin wrapper.
	if got := Safe().Decide(in); len(got) != 1 || got[0] != swaps[0] {
		t.Fatalf("Decide disagrees with DecideExplained: %+v vs %+v", got, swaps)
	}
}

// TestDecideExplainedStay covers the rejection reasons per gate.
func TestDecideExplainedStay(t *testing.T) {
	cases := []struct {
		name   string
		pol    Policy
		in     DecideInput
		reason string
	}{
		{
			name:   "no spares",
			pol:    Greedy(),
			in:     DecideInput{Active: cands(100), IterTime: 60, SwapTime: 1},
			reason: "no spare candidates",
		},
		{
			name: "not faster",
			pol:  Greedy(),
			in: DecideInput{Active: cands(100),
				Spare: []Candidate{{ID: 10, Rate: 90}}, IterTime: 60, SwapTime: 1},
			reason: "not above active rate",
		},
		{
			name: "payback too far",
			pol:  Safe(),
			in: DecideInput{Active: cands(100),
				Spare: []Candidate{{ID: 10, Rate: 200}}, IterTime: 1, SwapTime: 1e6},
			reason: "> threshold",
		},
		{
			name: "app gain gate",
			pol:  Friendly(),
			in: DecideInput{Active: cands(100, 50),
				// A spare at 50.5 improves the bottleneck process by 1%,
				// under friendly's 2% application-gain floor.
				Spare: []Candidate{{ID: 10, Rate: 50.5}}, IterTime: 60, SwapTime: 0.001},
			reason: "application gain",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			swaps, exp := tc.pol.DecideExplained(tc.in)
			if len(swaps) != 0 {
				t.Fatalf("unexpected swaps: %+v", swaps)
			}
			if exp.Verdict != "stay" {
				t.Fatalf("verdict %q, want stay", exp.Verdict)
			}
			if !strings.Contains(exp.Reason, tc.reason) {
				t.Fatalf("reason %q does not contain %q", exp.Reason, tc.reason)
			}
		})
	}
}

// TestDecideExplainedKeepsHeadlineOnLaterRejection: when the first pair
// is accepted and a later pair rejects, the explanation stays with the
// accepted headline swap.
func TestDecideExplainedKeepsHeadlineOnLaterRejection(t *testing.T) {
	in := DecideInput{
		Active:   cands(100, 200),
		Spare:    []Candidate{{ID: 10, Rate: 400}, {ID: 11, Rate: 150}},
		IterTime: 60,
		SwapTime: 1,
	}
	swaps, exp := Safe().DecideExplained(in)
	if len(swaps) != 1 {
		t.Fatalf("got %d swaps, want 1", len(swaps))
	}
	if exp.Verdict != "swap" || exp.NewPerf != 400 {
		t.Fatalf("explanation left the headline pair: %+v", exp)
	}
	if exp.Considered != 2 {
		t.Fatalf("considered = %d, want 2", exp.Considered)
	}
}
