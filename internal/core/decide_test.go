package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func cands(rates ...float64) []Candidate {
	var out []Candidate
	for i, r := range rates {
		out = append(out, Candidate{ID: i, Rate: r})
	}
	return out
}

func TestGreedySwapsOnAnyImprovement(t *testing.T) {
	in := DecideInput{
		Active:   cands(100, 200),
		Spare:    []Candidate{{ID: 10, Rate: 101}},
		IterTime: 60,
		SwapTime: 1000, // enormous cost: greedy does not care
	}
	swaps := Greedy().Decide(in)
	if len(swaps) != 1 {
		t.Fatalf("greedy made %d swaps, want 1", len(swaps))
	}
	if swaps[0].Out.ID != 0 || swaps[0].In.ID != 10 {
		t.Fatalf("greedy swapped %+v", swaps[0])
	}
}

func TestGreedyNoSwapWhenNoImprovement(t *testing.T) {
	in := DecideInput{
		Active:   cands(100, 200),
		Spare:    []Candidate{{ID: 10, Rate: 100}}, // equal, not better
		IterTime: 60,
		SwapTime: 1,
	}
	if swaps := Greedy().Decide(in); len(swaps) != 0 {
		t.Fatalf("greedy swapped with no improvement: %+v", swaps)
	}
}

func TestSwapsSlowestForFastest(t *testing.T) {
	in := DecideInput{
		Active:   cands(300, 100, 200),
		Spare:    []Candidate{{ID: 10, Rate: 250}, {ID: 11, Rate: 400}},
		IterTime: 60,
		SwapTime: 1,
	}
	swaps := Greedy().Decide(in)
	if len(swaps) != 2 {
		t.Fatalf("got %d swaps, want 2", len(swaps))
	}
	// Slowest active (rate 100) gets the fastest spare (rate 400).
	if swaps[0].Out.Rate != 100 || swaps[0].In.Rate != 400 {
		t.Fatalf("first swap = %+v", swaps[0])
	}
	// Second-slowest (200) gets the second-fastest (250).
	if swaps[1].Out.Rate != 200 || swaps[1].In.Rate != 250 {
		t.Fatalf("second swap = %+v", swaps[1])
	}
}

func TestSwapStopsWhenSpareNotFaster(t *testing.T) {
	in := DecideInput{
		Active:   cands(100, 390),
		Spare:    []Candidate{{ID: 10, Rate: 400}, {ID: 11, Rate: 350}},
		IterTime: 60,
		SwapTime: 1,
	}
	swaps := Greedy().Decide(in)
	if len(swaps) != 1 {
		t.Fatalf("got %d swaps, want 1 (350 < 390)", len(swaps))
	}
}

func TestSafeRequiresBigImprovement(t *testing.T) {
	// 15% improvement, below safe's 20% threshold.
	in := DecideInput{
		Active:   cands(100),
		Spare:    []Candidate{{ID: 10, Rate: 115}},
		IterTime: 600,
		SwapTime: 0.1,
	}
	if swaps := Safe().Decide(in); len(swaps) != 0 {
		t.Fatalf("safe accepted a 15%% improvement: %+v", swaps)
	}
	// 30% improvement with trivial payback: accepted.
	in.Spare[0].Rate = 130
	if swaps := Safe().Decide(in); len(swaps) != 1 {
		t.Fatalf("safe rejected a 30%% improvement")
	}
}

func TestSafeRejectsLongPayback(t *testing.T) {
	// Enormous improvement but swap cost equal to the iteration time:
	// payback >= 1 > 0.5, so safe must refuse.
	in := DecideInput{
		Active:   cands(100),
		Spare:    []Candidate{{ID: 10, Rate: 10000}},
		IterTime: 60,
		SwapTime: 60,
	}
	if swaps := Safe().Decide(in); len(swaps) != 0 {
		t.Fatalf("safe accepted payback > threshold: %+v", swaps)
	}
	// Same improvement with a cheap swap: accepted.
	in.SwapTime = 1
	if swaps := Safe().Decide(in); len(swaps) != 1 {
		t.Fatal("safe rejected a cheap, large swap")
	}
}

func TestFriendlyRequiresAppImprovement(t *testing.T) {
	// Swapping a non-bottleneck process does not improve the app (its
	// performance is set by the slowest member), so friendly refuses
	// where greedy accepts.
	in := DecideInput{
		Active:   cands(100, 300),
		Spare:    []Candidate{{ID: 10, Rate: 101}},
		IterTime: 60,
		SwapTime: 1,
	}
	gSwaps := Greedy().Decide(in)
	if len(gSwaps) != 1 {
		t.Fatalf("greedy swaps = %d", len(gSwaps))
	}
	// The 100→101 swap improves the app by only 1%, under friendly's 2%.
	if swaps := Friendly().Decide(in); len(swaps) != 0 {
		t.Fatalf("friendly hoarded a fast processor: %+v", swaps)
	}
	// A swap that lifts the bottleneck by 50% clears the 2% threshold.
	in.Spare[0].Rate = 150
	if swaps := Friendly().Decide(in); len(swaps) != 1 {
		t.Fatal("friendly rejected a truly beneficial swap")
	}
}

func TestFriendlySecondSwapMustStillHelpApp(t *testing.T) {
	// First swap lifts the bottleneck hugely; the second would improve
	// its process by only 1.67%, which moves the application bottleneck
	// by under friendly's 2% — friendly must stop at one swap.
	in := DecideInput{
		Active:   cands(100, 300),
		Spare:    []Candidate{{ID: 10, Rate: 500}, {ID: 11, Rate: 305}},
		IterTime: 60,
		SwapTime: 1,
	}
	swaps := Friendly().Decide(in)
	if len(swaps) != 1 {
		t.Fatalf("friendly made %d swaps, want 1 (second gains only 1.67%%)", len(swaps))
	}
	// Greedy happily takes both.
	if swaps := Greedy().Decide(in); len(swaps) != 2 {
		t.Fatalf("greedy made %d swaps, want 2", len(swaps))
	}
}

func TestDecideNoSpares(t *testing.T) {
	in := DecideInput{Active: cands(100), IterTime: 60, SwapTime: 1}
	if swaps := Greedy().Decide(in); len(swaps) != 0 {
		t.Fatal("swapped with no spares")
	}
}

func TestDecideDeterministicTieBreak(t *testing.T) {
	in := DecideInput{
		Active:   []Candidate{{ID: 5, Rate: 100}, {ID: 2, Rate: 100}},
		Spare:    []Candidate{{ID: 9, Rate: 200}, {ID: 4, Rate: 200}},
		IterTime: 60,
		SwapTime: 1,
	}
	for i := 0; i < 10; i++ {
		swaps := Greedy().Decide(in)
		if len(swaps) != 2 {
			t.Fatalf("got %d swaps", len(swaps))
		}
		if swaps[0].Out.ID != 2 || swaps[0].In.ID != 4 {
			t.Fatalf("tie-break not by ID: %+v", swaps[0])
		}
	}
}

func TestDecidePanicsOnBadInput(t *testing.T) {
	for _, in := range []DecideInput{
		{Active: cands(1), IterTime: 0, SwapTime: 1},
		{Active: cands(1), IterTime: 10, SwapTime: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			Greedy().Decide(in)
		}()
	}
}

func TestDecideDoesNotMutateInput(t *testing.T) {
	active := cands(300, 100)
	spare := []Candidate{{ID: 10, Rate: 400}}
	Greedy().Decide(DecideInput{Active: active, Spare: spare, IterTime: 60, SwapTime: 1})
	if active[0].Rate != 300 || active[1].Rate != 100 {
		t.Fatal("Decide mutated Active")
	}
}

// Property: swaps returned by any policy always strictly improve each
// swapped process and never exceed the spare pool, and the same input
// always yields the same decision.
func TestDecideProperties(t *testing.T) {
	st := rng.NewSource(77).Stream("decide")
	policies := []Policy{Greedy(), Safe(), Friendly()}
	f := func(nA, nS uint8, itRaw, swRaw uint16) bool {
		na := int(nA%8) + 1
		ns := int(nS % 8)
		var active, spare []Candidate
		for i := 0; i < na; i++ {
			active = append(active, Candidate{ID: i, Rate: st.Uniform(50, 800)})
		}
		for i := 0; i < ns; i++ {
			spare = append(spare, Candidate{ID: 100 + i, Rate: st.Uniform(50, 800)})
		}
		in := DecideInput{
			Active:   active,
			Spare:    spare,
			IterTime: float64(itRaw%600) + 1,
			SwapTime: float64(swRaw % 300),
		}
		for _, p := range policies {
			s1 := p.Decide(in)
			s2 := p.Decide(in)
			if len(s1) != len(s2) {
				return false
			}
			if len(s1) > ns {
				return false
			}
			usedIn := map[int]bool{}
			usedOut := map[int]bool{}
			for i, sw := range s1 {
				if s2[i] != sw {
					return false
				}
				if sw.In.Rate <= sw.Out.Rate {
					return false
				}
				if sw.ProcGain <= p.MinProcImprovement {
					return false
				}
				if sw.Payback > p.PaybackThreshold {
					return false
				}
				if usedIn[sw.In.ID] || usedOut[sw.Out.ID] {
					return false // a host used twice
				}
				usedIn[sw.In.ID] = true
				usedOut[sw.Out.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBottleneckAppPerf(t *testing.T) {
	if got := BottleneckAppPerf([]float64{3, 1, 2}); got != 1 {
		t.Fatalf("BottleneckAppPerf = %g", got)
	}
	if got := BottleneckAppPerf(nil); got != 0 {
		t.Fatalf("BottleneckAppPerf(nil) = %g", got)
	}
}

func TestDecideRelocationGreedy(t *testing.T) {
	in := RelocateInput{
		OldRates: []float64{100, 200},
		NewRates: []float64{300, 200},
		IterTime: 60,
		Overhead: 30,
	}
	ok, payback := Greedy().DecideRelocation(in)
	if !ok {
		t.Fatal("greedy refused a beneficial relocation")
	}
	// App perf 100 → 200 (bottleneck), payback = (30/60)/(1-0.5) = 1.
	if math.Abs(payback-1) > 1e-12 {
		t.Fatalf("payback = %g, want 1", payback)
	}
}

func TestDecideRelocationRefusesWorse(t *testing.T) {
	in := RelocateInput{
		OldRates: []float64{100, 200},
		NewRates: []float64{90, 400}, // bottleneck got worse
		IterTime: 60,
		Overhead: 1,
	}
	if ok, _ := Greedy().DecideRelocation(in); ok {
		t.Fatal("relocation accepted despite worse bottleneck")
	}
}

func TestDecideRelocationSafePaybackGate(t *testing.T) {
	in := RelocateInput{
		OldRates: []float64{100},
		NewRates: []float64{200},
		IterTime: 60,
		Overhead: 120, // payback = 2/(1-0.5) = 4 > 0.5
	}
	if ok, _ := Safe().DecideRelocation(in); ok {
		t.Fatal("safe accepted a slow-payback relocation")
	}
	in.Overhead = 10 // payback = (10/60)/0.5 = 1/3 <= 0.5
	if ok, _ := Safe().DecideRelocation(in); !ok {
		t.Fatal("safe refused a quick-payback relocation")
	}
}

func TestDecideRelocationSafeProcGate(t *testing.T) {
	in := RelocateInput{
		OldRates: []float64{100},
		NewRates: []float64{110}, // 10% < safe's 20%
		IterTime: 60,
		Overhead: 0.1,
	}
	if ok, _ := Safe().DecideRelocation(in); ok {
		t.Fatal("safe accepted an improvement below its process threshold")
	}
}

func TestDecideRelocationFriendlyAppGate(t *testing.T) {
	in := RelocateInput{
		OldRates: []float64{100, 100},
		NewRates: []float64{101, 100}, // 1% app gain < 2%
		IterTime: 60,
		Overhead: 1,
	}
	if ok, _ := Friendly().DecideRelocation(in); ok {
		t.Fatal("friendly accepted a 1% app improvement")
	}
}

func TestDecideRelocationMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Greedy().DecideRelocation(RelocateInput{
		OldRates: []float64{1}, NewRates: []float64{1, 2}, IterTime: 1,
	})
}

func TestDecideRelocationEmpty(t *testing.T) {
	if ok, _ := Greedy().DecideRelocation(RelocateInput{IterTime: 1}); ok {
		t.Fatal("empty relocation accepted")
	}
}
