package clock

import (
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := c.Now()
	c.Sleep(time.Millisecond)
	if d := c.Since(before); d <= 0 {
		t.Fatalf("Since went backwards: %v", d)
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C:
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker never ticked")
	}
	tk.Stop()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never ran")
	}
}

func TestSecondsFollowsClock(t *testing.T) {
	f := NewFake()
	secs := Seconds(f)
	if got := secs(); got != 0 {
		t.Fatalf("fresh Seconds = %v, want 0", got)
	}
	f.Advance(1500 * time.Millisecond)
	if got := secs(); got != 1.5 {
		t.Fatalf("Seconds after 1.5s advance = %v", got)
	}
	if s := Seconds(nil); s() < 0 {
		t.Fatal("Seconds(nil) must fall back to the wall clock")
	}
}

func TestRealDeadlineScalesWithClock(t *testing.T) {
	// On the wall clock, the deadline is ~d out.
	got := RealDeadline(Real{}, time.Hour)
	if until := time.Until(got); until < 59*time.Minute || until > 61*time.Minute {
		t.Fatalf("Real deadline %v out, want ~1h", until)
	}
	// On a 60x clock, a 1h virtual deadline is ~1min of wall time.
	s := NewScaled(60)
	got = RealDeadline(s, time.Hour)
	if until := time.Until(got); until < 50*time.Second || until > 70*time.Second {
		t.Fatalf("Scaled deadline %v out, want ~1min", until)
	}
	// A Fake clock has no wall mapping: grant the full duration.
	got = RealDeadline(NewFake(), time.Hour)
	if until := time.Until(got); until < 59*time.Minute {
		t.Fatalf("Fake deadline %v out, want ~1h", until)
	}
}

func TestScaledRunsFaster(t *testing.T) {
	s := NewScaled(100)
	start := s.Now()
	wall := time.Now()
	s.Sleep(time.Second) // 10ms real
	if real := time.Since(wall); real > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 1s took %v real", real)
	}
	if virt := s.Since(start); virt < time.Second {
		t.Fatalf("scaled clock advanced only %v during a 1s virtual sleep", virt)
	}
	tm := s.NewTimer(time.Second)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatal("scaled timer never fired")
	}
	tk := s.NewTicker(200 * time.Millisecond) // 2ms real
	defer tk.Stop()
	select {
	case <-tk.C:
	case <-time.After(5 * time.Second):
		t.Fatal("scaled ticker never ticked")
	}
	done := make(chan struct{})
	s.AfterFunc(100*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scaled AfterFunc never ran")
	}
}

func TestScaledRealDuration(t *testing.T) {
	s := NewScaled(25)
	if got := s.RealDuration(time.Second); got != 40*time.Millisecond {
		t.Fatalf("RealDuration(1s) at 25x = %v, want 40ms", got)
	}
	if got := s.RealDuration(0); got != 0 {
		t.Fatalf("RealDuration(0) = %v", got)
	}
	if got := s.RealDuration(time.Nanosecond); got < time.Nanosecond {
		t.Fatalf("RealDuration rounded a positive duration to %v", got)
	}
	if f := NewScaled(0).Factor(); f != 1 {
		t.Fatalf("NewScaled(0) factor = %v, want 1", f)
	}
}
