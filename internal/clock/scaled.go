package clock

import (
	"sync"
	"time"
)

// Scaled is a clock whose timeline runs Factor times faster than the
// wall clock: a Sleep(1s) on a Scaled clock with Factor 25 blocks for
// 40ms of real time, and Now advances 25 virtual seconds per real
// second. Unlike Fake it needs no Advance driver, so it accelerates
// live runs where goroutines do real work (compute, real sockets)
// between waits — the `swaprun -accel` / `swapexp -live -accel` mode.
//
// The zero value is invalid; use NewScaled.
type Scaled struct {
	factor float64
	start  time.Time // wall instant the scaled timeline was anchored
	origin time.Time // virtual instant corresponding to start
}

// NewScaled returns a clock running factor× faster than the wall clock.
// factor <= 0 selects 1 (real time).
func NewScaled(factor float64) *Scaled {
	if factor <= 0 {
		factor = 1
	}
	//swapvet:ignore clockdiscipline -- anchors the virtual timeline to the wall clock
	now := time.Now()
	return &Scaled{factor: factor, start: now, origin: now}
}

// Factor reports the acceleration factor.
func (s *Scaled) Factor() float64 { return s.factor }

// RealDuration translates a duration on the scaled timeline into the
// wall-clock duration it occupies (d / factor). Used by RealDeadline to
// arm socket deadlines that match virtual timeouts.
func (s *Scaled) RealDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	scaled := time.Duration(float64(d) / s.factor)
	if scaled <= 0 {
		scaled = 1
	}
	return scaled
}

func (s *Scaled) virtualDuration(real time.Duration) time.Duration {
	return time.Duration(float64(real) * s.factor)
}

func (s *Scaled) Now() time.Time {
	//swapvet:ignore clockdiscipline -- maps wall time onto the scaled timeline
	real := time.Since(s.start)
	return s.origin.Add(s.virtualDuration(real))
}

func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }
func (s *Scaled) Until(t time.Time) time.Duration { return t.Sub(s.Now()) }

func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	//swapvet:ignore clockdiscipline -- compressed wall sleep implements the scaled timeline
	time.Sleep(s.RealDuration(d))
}

func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.AfterFunc(d, func() { ch <- s.Now() })
	return ch
}

func (s *Scaled) AfterFunc(d time.Duration, f func()) *Timer {
	//swapvet:ignore clockdiscipline -- compressed wall timer implements the scaled timeline
	t := time.AfterFunc(s.RealDuration(d), f)
	return &Timer{stop: t.Stop}
}

func (s *Scaled) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	//swapvet:ignore clockdiscipline -- compressed wall timer implements the scaled timeline
	t := time.AfterFunc(s.RealDuration(d), func() { ch <- s.Now() })
	return &Timer{C: ch, stop: t.Stop}
}

func (s *Scaled) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	ch := make(chan time.Time, 1)
	//swapvet:ignore clockdiscipline -- compressed wall ticker implements the scaled timeline
	t := time.NewTicker(s.RealDuration(d))
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-t.C:
				select {
				case ch <- s.Now():
				default: // receiver is behind; drop the tick like time.Ticker
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return &Ticker{C: ch, stop: func() {
		once.Do(func() {
			t.Stop()
			close(done)
		})
	}}
}
