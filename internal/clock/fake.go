package clock

import (
	"sort"
	"sync"
	"time"
)

// fakeEpoch is the fixed instant a Fake clock starts at. Any constant
// works; this one is the opening day of HPDC-12, where the source paper
// appeared.
var fakeEpoch = time.Date(2003, 6, 22, 0, 0, 0, 0, time.UTC)

// Fake is a manually driven clock for tests. Time stands still until
// Advance (or AdvanceTo) moves it; pending waiters — sleeps, timers,
// tickers — fire in timestamp order, with the clock reading exactly
// each waiter's deadline at the moment it fires. In auto-advance mode
// (NewFakeAuto) every Sleep immediately advances the clock to its own
// deadline, so straight-line code that sleeps runs at full speed with
// no driver goroutine.
//
// All methods are safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	seq     int64
	waiters []*fakeWaiter
	auto    bool
}

type fakeWaiter struct {
	when    time.Time
	seq     int64         // FIFO tiebreak for equal deadlines
	period  time.Duration // > 0 for tickers
	ch      chan time.Time
	fn      func() // AfterFunc callback, run in its own goroutine
	stopped bool
}

// NewFake returns a Fake clock frozen at a fixed epoch. Drive it with
// Advance or AdvanceTo.
func NewFake() *Fake {
	f := &Fake{now: fakeEpoch}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// NewFakeAuto returns a Fake clock in auto-advance mode: each Sleep
// advances the clock to its own deadline (firing any earlier waiters in
// timestamp order first) instead of blocking for a driver.
func NewFakeAuto() *Fake {
	f := NewFake()
	f.auto = true
	return f
}

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }
func (f *Fake) Until(t time.Time) time.Duration { return t.Sub(f.Now()) }

// Advance moves the clock forward by d, firing every waiter whose
// deadline falls inside the window, in (deadline, registration) order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceToLocked(f.now.Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is not ahead).
func (f *Fake) AdvanceTo(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceToLocked(t)
}

// advanceToLocked fires all waiters due at or before target in
// timestamp order, reading the clock as each waiter's own deadline at
// its moment of firing, then settles the clock at target.
func (f *Fake) advanceToLocked(target time.Time) {
	for {
		w := f.nextDueLocked(target)
		if w == nil {
			break
		}
		if w.when.After(f.now) {
			f.now = w.when
		}
		f.fireLocked(w)
	}
	if target.After(f.now) {
		f.now = target
	}
	f.cond.Broadcast()
}

// nextDueLocked returns the earliest live waiter due at or before
// target, or nil.
func (f *Fake) nextDueLocked(target time.Time) *fakeWaiter {
	var best *fakeWaiter
	for _, w := range f.waiters {
		if w.stopped || w.when.After(target) {
			continue
		}
		if best == nil || w.when.Before(best.when) ||
			(w.when.Equal(best.when) && w.seq < best.seq) {
			best = w
		}
	}
	return best
}

func (f *Fake) fireLocked(w *fakeWaiter) {
	switch {
	case w.fn != nil:
		go w.fn()
	case w.ch != nil:
		select {
		case w.ch <- w.when:
		default: // receiver is behind; drop like time.Ticker
		}
	}
	if w.period > 0 {
		w.when = w.when.Add(w.period)
		w.seq = f.nextSeqLocked()
		return
	}
	w.stopped = true
	f.removeStoppedLocked()
}

func (f *Fake) nextSeqLocked() int64 {
	f.seq++
	return f.seq
}

func (f *Fake) addWaiterLocked(w *fakeWaiter) {
	w.seq = f.nextSeqLocked()
	f.waiters = append(f.waiters, w)
	f.cond.Broadcast()
}

func (f *Fake) removeStoppedLocked() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	f.waiters = live
	f.cond.Broadcast()
}

// WaiterCount reports the number of pending waiters (sleeps, timers and
// tickers not yet fired or stopped).
func (f *Fake) WaiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// PendingDeadlines reports the deadlines of all pending waiters in
// ascending order (for tests and debugging).
func (f *Fake) PendingDeadlines() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Time, 0, len(f.waiters))
	for _, w := range f.waiters {
		out = append(out, w.when)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// BlockUntilWaiters blocks until at least n waiters are pending. Tests
// use it to let concurrently started sleepers register before Advance.
func (f *Fake) BlockUntilWaiters(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.waiters) < n {
		f.cond.Wait()
	}
}

func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	deadline := f.now.Add(d)
	w := &fakeWaiter{when: deadline, ch: make(chan time.Time, 1)}
	f.addWaiterLocked(w)
	if f.auto {
		// Wake everything due before us in timestamp order, ourselves
		// included, then return without blocking on the channel send
		// made above.
		f.advanceToLocked(deadline)
	}
	ch := w.ch
	f.mu.Unlock()
	<-ch
}

func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C
}

func (f *Fake) AfterFunc(d time.Duration, fn func()) *Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{when: f.now.Add(d), fn: fn}
	f.addWaiterLocked(w)
	return &Timer{stop: f.stopFunc(w)}
}

func (f *Fake) NewTimer(d time.Duration) *Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{when: f.now.Add(d), ch: make(chan time.Time, 1)}
	f.addWaiterLocked(w)
	return &Timer{C: w.ch, stop: f.stopFunc(w)}
}

func (f *Fake) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{when: f.now.Add(d), period: d, ch: make(chan time.Time, 1)}
	f.addWaiterLocked(w)
	stop := f.stopFunc(w)
	return &Ticker{C: w.ch, stop: func() { stop() }}
}

// stopFunc returns a Stop implementation for w: it reports whether the
// waiter was still pending and removes it.
func (f *Fake) stopFunc(w *fakeWaiter) func() bool {
	return func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		if w.stopped {
			return false
		}
		w.stopped = true
		f.removeStoppedLocked()
		return true
	}
}
