// Package clock abstracts the wall clock behind an injectable interface
// so everything in the runtime that waits — retry backoff, circuit
// probes, telemetry intervals, fault-plan delays, transfer deadlines —
// can run against a fake or accelerated time source in tests and
// scenario sweeps. The swapvet clockdiscipline rule bans bare time.Now /
// time.Sleep / timer constructors in the core packages, so this package
// is the only sanctioned doorway to the time package (DESIGN.md §16).
package clock

import "time"

// Clock is the subset of package time the runtime is allowed to use.
// Real delegates to the wall clock; Fake and Scaled substitute a
// controlled or compressed timeline.
type Clock interface {
	// Now reports the current instant on this clock's timeline.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until is t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run in its own goroutine after d.
	AfterFunc(d time.Duration, f func()) *Timer
	// NewTimer returns a Timer that delivers on C after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a Ticker that delivers on C every d.
	NewTicker(d time.Duration) *Ticker
}

// Timer mirrors time.Timer across real and fake clocks: C delivers when
// the timer fires (nil for AfterFunc timers) and Stop cancels a pending
// fire, reporting whether it was still pending.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer. It reports whether the call stopped a fire
// that had not yet happened.
func (t *Timer) Stop() bool {
	if t.stop == nil {
		return false
	}
	return t.stop()
}

// Ticker mirrors time.Ticker: C delivers repeatedly until Stop.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop shuts the ticker down. No more ticks are delivered after it
// returns.
func (t *Ticker) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

func (Real) Now() time.Time                  { return time.Now() }
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }
func (Real) Until(t time.Time) time.Duration { return time.Until(t) }
func (Real) Sleep(d time.Duration)           { time.Sleep(d) }

func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (Real) AfterFunc(d time.Duration, f func()) *Timer {
	t := time.AfterFunc(d, f)
	return &Timer{stop: t.Stop}
}

func (Real) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (Real) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

// Seconds adapts a Clock into the float-seconds timestamp source the
// tracer and telemetry hub use (seconds since the moment Seconds was
// called, on clk's timeline).
func Seconds(clk Clock) func() float64 {
	if clk == nil {
		clk = Real{}
	}
	start := clk.Now()
	return func() float64 { return clk.Since(start).Seconds() }
}

// realScaler is implemented by clocks whose timeline runs at a multiple
// of wall time (Scaled). RealDuration translates a duration on the
// clock's timeline into the wall-clock duration it occupies.
type realScaler interface {
	RealDuration(d time.Duration) time.Duration
}

// RealTimeout translates a duration on clk's timeline into the
// wall-clock duration it occupies: compressed on a Scaled clock,
// unchanged on Real and Fake (a fake clock has no wall mapping, so the
// full budget is granted as a safety net). Use it wherever a timeout
// must be handed to the kernel (net.DialTimeout).
func RealTimeout(clk Clock, d time.Duration) time.Duration {
	if s, ok := clk.(realScaler); ok {
		return s.RealDuration(d)
	}
	return d
}

// RealDeadline converts "d from now on clk's timeline" into a wall-clock
// instant suitable for net.Conn.SetDeadline. Kernel socket deadlines can
// only follow the wall clock, so this is the sanctioned seam between
// virtual timeouts and real I/O: on Real it is time.Now().Add(d); on a
// Scaled clock the virtual duration is compressed by the accel factor;
// on a Fake clock (no real-time mapping) the full d is granted in wall
// time, which keeps the deadline a safety net rather than a trigger.
func RealDeadline(clk Clock, d time.Duration) time.Time {
	//swapvet:ignore clockdiscipline -- kernel socket deadlines are wall-clock by nature
	return time.Now().Add(RealTimeout(clk, d))
}
