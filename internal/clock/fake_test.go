package clock

import (
	"sync"
	"testing"
	"time"
)

// Concurrent sleepers must be woken in timestamp order: each After
// channel receives the clock reading at its fire moment, which must be
// exactly that waiter's own deadline — a waiter fired out of order
// would observe a later time.
func TestFakeWakesSleepersInTimestampOrder(t *testing.T) {
	f := NewFake()
	start := f.Now()
	delays := []time.Duration{70 * time.Millisecond, 10 * time.Millisecond,
		40 * time.Millisecond, 100 * time.Millisecond, 40 * time.Millisecond}

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[time.Duration][]time.Time{}
	for _, d := range delays {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			at := <-f.After(d)
			mu.Lock()
			got[d] = append(got[d], at)
			mu.Unlock()
		}(d)
	}

	f.BlockUntilWaiters(len(delays))
	f.Advance(time.Second)
	wg.Wait()

	for d, ats := range got {
		for _, at := range ats {
			if want := start.Add(d); !at.Equal(want) {
				t.Errorf("sleeper %v fired at %v, want %v (out-of-order wakeup)", d, at, want)
			}
		}
	}
	if len(got[40*time.Millisecond]) != 2 {
		t.Fatalf("expected both 40ms sleepers to fire, got %d", len(got[40*time.Millisecond]))
	}
}

// One Advance must fire every timer in its window, earliest first, and
// leave later timers pending.
func TestFakeAdvancePastMultipleTimers(t *testing.T) {
	f := NewFake()
	start := f.Now()
	t1 := f.NewTimer(10 * time.Millisecond)
	t2 := f.NewTimer(20 * time.Millisecond)
	t3 := f.NewTimer(500 * time.Millisecond)

	f.Advance(50 * time.Millisecond)

	if at := <-t1.C; !at.Equal(start.Add(10 * time.Millisecond)) {
		t.Errorf("t1 fired at %v", at)
	}
	if at := <-t2.C; !at.Equal(start.Add(20 * time.Millisecond)) {
		t.Errorf("t2 fired at %v", at)
	}
	select {
	case at := <-t3.C:
		t.Fatalf("t3 fired early at %v", at)
	default:
	}
	if n := f.WaiterCount(); n != 1 {
		t.Fatalf("WaiterCount = %d, want 1 (t3 pending)", n)
	}
	if !f.Now().Equal(start.Add(50 * time.Millisecond)) {
		t.Fatalf("clock settled at %v, want start+50ms", f.Now())
	}
	f.Advance(450 * time.Millisecond)
	if at := <-t3.C; !at.Equal(start.Add(500 * time.Millisecond)) {
		t.Errorf("t3 fired at %v", at)
	}
}

// A ticker must stay phase-aligned: ticks land on exact multiples of
// the period even when the clock advances in odd increments.
func TestFakeTickerDoesNotDrift(t *testing.T) {
	f := NewFake()
	start := f.Now()
	tk := f.NewTicker(10 * time.Millisecond)
	defer tk.Stop()

	var ticks []time.Time
	for _, step := range []time.Duration{13 * time.Millisecond, 9 * time.Millisecond,
		11 * time.Millisecond, 7 * time.Millisecond} {
		f.Advance(step)
		// Drain whatever this step produced (buffered cap 1, like
		// time.Ticker: a slow receiver sees dropped, not late, ticks).
		select {
		case at := <-tk.C:
			ticks = append(ticks, at)
		default:
		}
	}
	if len(ticks) < 3 {
		t.Fatalf("got %d ticks, want >= 3", len(ticks))
	}
	for i, at := range ticks {
		off := at.Sub(start)
		if off%(10*time.Millisecond) != 0 {
			t.Errorf("tick %d at offset %v is not a multiple of the period (drift)", i, off)
		}
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	f.Advance(time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
	if n := f.WaiterCount(); n != 0 {
		t.Fatalf("WaiterCount = %d after stop", n)
	}
}

func TestFakeAfterFuncRunsCallback(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	f.AfterFunc(25*time.Millisecond, func() { close(done) })
	f.Advance(24 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("AfterFunc fired early")
	default:
	}
	f.Advance(time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc never ran")
	}
}

// Auto-advance mode: straight-line sleeps complete instantly, and the
// clock reads the sum of the sleeps.
func TestFakeAutoAdvanceSleep(t *testing.T) {
	f := NewFakeAuto()
	start := f.Now()
	wall := time.Now()
	f.Sleep(3 * time.Second)
	f.Sleep(2 * time.Second)
	if got := f.Since(start); got != 5*time.Second {
		t.Fatalf("fake elapsed %v, want 5s", got)
	}
	if real := time.Since(wall); real > time.Second {
		t.Fatalf("auto-advance sleeps took %v of real time", real)
	}
}

// Auto-advance must still fire earlier waiters registered by other
// goroutines before jumping to its own deadline.
func TestFakeAutoAdvanceFiresEarlierWaiters(t *testing.T) {
	f := NewFakeAuto()
	start := f.Now()
	early := f.NewTimer(10 * time.Millisecond)
	f.Sleep(time.Second)
	at := <-early.C
	if !at.Equal(start.Add(10 * time.Millisecond)) {
		t.Fatalf("early timer fired at %v, want start+10ms", at)
	}
}

// Hammer the fake from many goroutines so `go test -race` proves the
// locking. No assertions beyond completion: the schedule is arbitrary.
func TestFakeConcurrentUseRaceClean(t *testing.T) {
	f := NewFake()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch j % 4 {
				case 0:
					f.Sleep(time.Duration(i+1) * time.Millisecond)
				case 1:
					tm := f.NewTimer(time.Duration(j) * time.Millisecond)
					tm.Stop()
				case 2:
					f.Now()
				case 3:
					f.AfterFunc(time.Millisecond, func() {})
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				f.Advance(5 * time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	f.Advance(time.Hour) // flush stragglers
}
