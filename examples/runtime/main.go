// Runtime: a live demonstration of the swapping runtime (internal/swaprt)
// rather than the simulator. A Jacobi relaxation solver runs on 2 of 4
// over-allocated ranks of the mini-MPI world; halfway through, synthetic
// CPU load lands on one active rank's "host", the swap manager notices
// its probe rate collapse, and the process is swapped to a spare — state
// and all — while the solver keeps converging.
//
// Run with:
//
//	go run ./examples/runtime
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/swaprt"
)

// loadInjector simulates per-host external load: a loaded host's probe
// rate drops and its compute slows down by the same factor.
type loadInjector struct {
	mu     sync.Mutex
	factor []float64 // slowdown per rank-host, 1 = unloaded
}

func (li *loadInjector) slowdown(rank int) float64 {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.factor[rank]
}

func (li *loadInjector) set(rank int, f float64) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.factor[rank] = f
}

func (li *loadInjector) probe(rank int) float64 {
	return 1000 / li.slowdown(rank)
}

func main() {
	const (
		worldSize = 4
		active    = 2
		gridSize  = 64
		iters     = 40
	)
	inj := &loadInjector{factor: []float64{1, 1, 1, 1}}

	// Crush rank 1's host shortly after the run starts.
	go func() {
		time.Sleep(300 * time.Millisecond)
		log.Printf("load injector: host of rank 1 is now 8x slower")
		inj.set(1, 8)
	}()

	world := mpi.NewWorld(worldSize)
	cfg := swaprt.Config{
		Active: active,
		Policy: core.Greedy(),
		Probe:  inj.probe,
		Logf:   log.Printf,
	}

	var mu sync.Mutex
	var residuals []float64
	err := swaprt.Run(world, cfg, func(s *swaprt.Session) error {
		// Jacobi relaxation on a 1-D rod: each active rank owns half the
		// grid and exchanges boundary values each iteration. Registered
		// state: the local grid slice and the iteration counter.
		iter := 0
		local := make([]float64, gridSize/active+2) // plus ghost cells
		s.Register("iter", &iter)
		s.Register("grid", &local)
		// Fixed boundary conditions on the global rod ends.
		const left, right = 0.0, 100.0

		for !s.Done() && iter < iters {
			if s.Active() {
				comm := s.Comm()
				me, n := comm.Rank(), comm.Size()
				if me == 0 {
					local[0] = left
				}
				if me == n-1 {
					local[len(local)-1] = right
				}
				// Ghost exchange with neighbours.
				if me > 0 {
					if err := comm.Send(me-1, 1, float64Bytes(local[1])); err != nil {
						return err
					}
					b, _, err := comm.Recv(me-1, 1)
					if err != nil {
						return err
					}
					local[0] = bytesFloat64(b)
				}
				if me < n-1 {
					if err := comm.Send(me+1, 1, float64Bytes(local[len(local)-2])); err != nil {
						return err
					}
					b, _, err := comm.Recv(me+1, 1)
					if err != nil {
						return err
					}
					local[len(local)-1] = bytesFloat64(b)
				}
				// One Jacobi sweep, slowed by the injected host load.
				next := make([]float64, len(local))
				copy(next, local)
				diff := 0.0
				for i := 1; i < len(local)-1; i++ {
					next[i] = (local[i-1] + local[i+1]) / 2
					diff += math.Abs(next[i] - local[i])
				}
				copy(local, next)
				busyWait(time.Duration(float64(20*time.Millisecond) * inj.slowdown(s.Rank())))

				res, err := comm.AllReduceFloat64(mpi.OpSum, diff)
				if err != nil {
					return err
				}
				if me == 0 {
					mu.Lock()
					residuals = append(residuals, res)
					mu.Unlock()
					if iter%10 == 0 {
						log.Printf("iter %2d residual %8.3f (rank %d on duty)", iter, res, s.Rank())
					}
				}
				iter++
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		if s.Active() && s.Comm().Rank() == 0 {
			log.Printf("converged after %d iterations; final residual %.3f; this rank swapped %d times",
				iter, residuals[len(residuals)-1], s.Swaps())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(residuals) != iters {
		log.Fatalf("expected %d residuals, got %d — iterations lost in the swap?", iters, len(residuals))
	}
	for i := 1; i < len(residuals); i++ {
		if residuals[i] > residuals[i-1]+1e-9 {
			log.Fatalf("residual rose at iteration %d: %g -> %g", i, residuals[i-1], residuals[i])
		}
	}
	fmt.Println("OK: solver converged monotonically across the live process swap")
}

// busyWait spins for the given duration, emulating compute that slows
// under CPU contention (sleep would not).
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(end) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-12
		}
	}
	_ = x
}

func float64Bytes(v float64) []byte {
	b := make([]byte, 8)
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

func bytesFloat64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
