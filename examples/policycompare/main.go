// Policycompare: the Figure 7 scenario at three dynamism levels — how the
// greedy, safe and friendly swapping policies trade peak benefit against
// risk as the environment grows more chaotic, with a 100 MB process
// state.
//
// Run with:
//
//	go run ./examples/policycompare
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/stats"
	"repro/internal/strategy"
)

func main() {
	application := app.Default(25).WithState(100e6)
	const (
		hosts  = 32
		active = 4
		reps   = 5
	)

	fmt.Printf("policy comparison: %d active / %d hosts, 100 MB state, %d reps\n\n",
		active, hosts, reps)
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "dynamism", "none", "greedy", "safe", "friendly")

	for _, p := range []float64{0.05, 0.2, 0.8} {
		row := fmt.Sprintf("p=%-10g", p)
		for _, policyName := range []string{"none", "greedy", "safe", "friendly"} {
			var acc stats.Accumulator
			for rep := 0; rep < reps; rep++ {
				kernel := simkern.New()
				plat := platform.New(kernel,
					platform.Default(hosts, loadgen.NewOnOff(p)),
					rng.NewSource(100+int64(rep)))
				sc := strategy.Scenario{Active: active, App: application}
				var res strategy.Result
				if policyName == "none" {
					res = strategy.None{}.Run(plat, sc)
				} else {
					pol, err := core.Named(policyName)
					if err != nil {
						panic(err)
					}
					sc.Policy = pol
					res = strategy.Swap{}.Run(plat, sc)
				}
				acc.Add(res.TotalTime)
			}
			row += fmt.Sprintf(" %9.0f s", acc.Mean())
		}
		fmt.Println(row)
	}

	fmt.Println("\nreading the table: greedy wins while the environment is calm enough")
	fmt.Println("to chase load away; safe gives up some of that benefit but never")
	fmt.Println("pays for a swap it cannot amortize, so it wins when things get chaotic.")
}
