// Tracereplay: drive the simulation with recorded CPU load traces instead
// of a stochastic model — the paper's stated future-work direction. The
// example records traces from the two stochastic models into the
// change-point CSV format, replays them through the same Model interface,
// verifies the replay is exact, and then compares techniques on the
// recorded environment (where back-to-back comparisons are perfectly
// fair: every technique sees byte-identical load).
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/strategy"
)

func main() {
	const hosts = 16
	// 1. Record: materialize one ON/OFF trace per host.
	src := rng.NewSource(101)
	var files []*bytes.Buffer
	model := loadgen.NewOnOff(0.25)
	for h := 0; h < hosts; h++ {
		tr := loadgen.NewTrace(model.NewSource(src, h))
		starts, vals := tr.Segments(4 * 3600)
		var segs []loadgen.Segment
		for i := 0; i < len(starts)-1; i++ {
			segs = append(segs, loadgen.Segment{Dur: starts[i+1] - starts[i], N: vals[i]})
		}
		tail := vals[len(vals)-1]
		var buf bytes.Buffer
		if err := loadgen.WriteTraceCSV(&buf, segs, tail); err != nil {
			log.Fatal(err)
		}
		files = append(files, &buf)
	}
	fmt.Printf("recorded %d host traces (4h each, change-point CSV)\n", hosts)

	// 2. Replay: parse the CSVs back into a TraceSet model.
	var set loadgen.TraceSet
	for h, buf := range files {
		segs, tail, err := loadgen.ParseTraceCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatalf("host %d: %v", h, err)
		}
		set.Traces = append(set.Traces, loadgen.Replay{Segments: segs, Tail: tail})
	}

	// 3. Verify the replay is exact against the original model.
	srcCheck := rng.NewSource(101)
	for h := 0; h < hosts; h++ {
		orig := loadgen.NewTrace(model.NewSource(srcCheck, h))
		replay := loadgen.NewTrace(set.NewSource(rng.NewSource(0), h))
		for t := 0.0; t < 4*3600; t += 97 {
			if orig.ValueAt(t) != replay.ValueAt(t) {
				log.Fatalf("replay diverged at host %d t=%g", h, t)
			}
		}
	}
	fmt.Println("replay verified: identical load at every probe point")

	// 4. Back-to-back technique comparison on the recorded environment.
	application := app.Default(20)
	fmt.Printf("\n%-6s %12s %8s\n", "tech", "exec time", "events")
	for _, name := range []string{"none", "swap", "dlb", "cr"} {
		tech, err := strategy.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		kernel := simkern.New()
		plat := platform.New(kernel, platform.Default(hosts, set), rng.NewSource(55))
		res := tech.Run(plat, strategy.Scenario{
			Active: 4, App: application, Policy: core.Greedy(),
		})
		fmt.Printf("%-6s %10.1f s %8d\n", name, res.TotalTime, res.Swaps)
	}
	fmt.Println("\nreplayed traces make comparisons exactly repeatable: rerun this")
	fmt.Println("program and every number above is identical.")
}
