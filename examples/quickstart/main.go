// Quickstart: simulate an iterative MPI application on a shared
// workstation network, first without any adaptation and then with MPI
// process swapping under the greedy policy, and show what each swap
// bought.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/strategy"
)

func main() {
	// A 16-workstation LAN (200-800 MFlop/s hosts, shared 6 MB/s link)
	// under a moderately dynamic ON/OFF load: each host has a competing
	// compute job arriving with probability 0.2 per 30 s step.
	const seed = 7
	buildPlatform := func() *platform.Platform {
		kernel := simkern.New()
		cfg := platform.Default(16, loadgen.NewOnOff(0.2))
		return platform.New(kernel, cfg, rng.NewSource(seed))
	}

	// An iterative application: 4 processes, ~2 minutes of compute per
	// iteration, 1 MB exchanged per iteration, 1 MB of process state.
	application := app.Default(20)
	scenario := strategy.Scenario{
		Active: 4,
		App:    application,
		Policy: core.Greedy(),
	}

	baseline := strategy.None{}.Run(buildPlatform(), scenario)
	swapped := strategy.Swap{}.Run(buildPlatform(), scenario)

	fmt.Printf("application: %s\n", application)
	fmt.Printf("platform:    16 hosts, 4 active + 12 spares, ON/OFF load p=0.2\n\n")
	fmt.Printf("%-28s %10.1f s\n", "do nothing (NONE):", baseline.TotalTime)
	fmt.Printf("%-28s %10.1f s   (%d swaps, %.1f s overhead)\n",
		"process swapping (greedy):", swapped.TotalTime, swapped.Swaps, swapped.Overhead)
	fmt.Printf("%-28s %9.1f%%\n\n", "improvement:",
		100*(1-swapped.TotalTime/baseline.TotalTime))

	fmt.Println("swap events:")
	for _, e := range swapped.Events {
		if e.Kind == strategy.EventSwap {
			fmt.Printf("  t=%8.1f  %s\n", e.T, e.Detail)
		}
	}

	// The payback algebra directly: how many iterations does a swap need
	// to pay for itself on this platform?
	swapTime := core.SwapTime(0.0005, 6e6, application.StateBytes)
	iterTime := baseline.MeanIterTime()
	fmt.Printf("\npayback for a 2x improvement here: %.2f iterations"+
		" (swap %.2f s, iteration %.1f s)\n",
		core.PaybackDistance(swapTime, iterTime, 1, 2), swapTime, iterTime)
}
