// Checkpoint: the paper's checkpoint/restart technique on the live
// runtime. Run 1 computes part of an iterative application and writes
// each rank's registered state to a central checkpoint store; the program
// then simulates a crash/reschedule by starting a completely fresh world
// (run 2) that restores from the store and finishes the computation —
// demonstrating that CR, unlike swapping, "does not limit the application
// to the processors on which execution is started".
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/swaprt"
)

const (
	activeRanks = 2
	totalIters  = 40
	ckptAt      = 25
)

// phase runs the application from its current (possibly restored) state
// up to `until` iterations, checkpointing at ckptAt during the first
// phase.
func phase(store swaprt.StoreClient, restore bool, until int) (sums map[int]float64, err error) {
	var mu sync.Mutex
	sums = map[int]float64{}
	world := mpi.NewWorld(activeRanks)
	err = swaprt.Run(world, swaprt.Config{
		Active: activeRanks,
		Policy: core.Safe(),
		Probe:  func(int) float64 { return 100 },
	}, func(s *swaprt.Session) error {
		iter := 0
		sum := 0.0
		s.Register("iter", &iter)
		s.Register("sum", &sum)
		key := fmt.Sprintf("demo/rank%d", s.Comm().Rank())
		if restore {
			if err := s.RestoreFrom(store, key); err != nil {
				return err
			}
			log.Printf("rank %d restored at iteration %d", s.Rank(), iter)
		}
		for !s.Done() && iter < until {
			if s.Active() {
				v, err := s.Comm().AllReduceFloat64(mpi.OpSum, float64(iter))
				if err != nil {
					return err
				}
				sum += v
				iter++
				if !restore && iter == ckptAt {
					if err := s.CheckpointTo(store, key); err != nil {
						return err
					}
					log.Printf("rank %d checkpointed at iteration %d", s.Rank(), iter)
				}
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		if s.Active() {
			mu.Lock()
			sums[s.Comm().Rank()] = sum
			mu.Unlock()
		}
		return nil
	})
	return sums, err
}

func main() {
	// Central checkpoint store (in-process here; cmd/ckptstore runs the
	// same server standalone).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = swaprt.NewStoreServer(nil).Serve(ln) }()
	store := swaprt.StoreClient{Addr: ln.Addr().String()}

	// Run 1: compute, checkpoint at iteration 25, keep going to 30 (the
	// work past the checkpoint is "lost in the crash").
	if _, err := phase(store, false, 30); err != nil {
		log.Fatal(err)
	}
	log.Printf("--- simulated failure and reschedule: new world, state from the store ---")

	// Run 2: fresh world restores iteration 25 and finishes.
	sums, err := phase(store, true, totalIters)
	if err != nil {
		log.Fatal(err)
	}

	// An uninterrupted run's expected sum: each iteration's allreduce
	// contributes iter*activeRanks to every rank.
	want := 0.0
	for i := 0; i < totalIters; i++ {
		want += float64(i * activeRanks)
	}
	ok := true
	for rank, sum := range sums {
		status := "OK"
		if sum != want {
			status, ok = "WRONG", false
		}
		fmt.Printf("rank %d final sum %.0f (want %.0f) %s\n", rank, sum, want, status)
	}
	if ok {
		fmt.Println("checkpoint/restart preserved the computation exactly")
	}
}
