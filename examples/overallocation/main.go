// Overallocation: the Figure 5 scenario — how many spare processors does
// process swapping need before it pays off? Sweeps the spare pool from 0%
// to 300% of the active count and compares doing nothing against swapping
// and checkpoint/restart.
//
// Run with:
//
//	go run ./examples/overallocation
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/stats"
	"repro/internal/strategy"
)

func main() {
	const (
		active = 8
		reps   = 5
		loadP  = 0.2
	)
	application := app.Default(25)

	fmt.Printf("over-allocation sweep: %d active processes, ON/OFF p=%g, 1 MB state\n\n",
		active, loadP)
	fmt.Printf("%-16s %8s %12s %12s %12s\n", "over-allocation", "hosts", "none", "swap", "cr")

	for _, pct := range []int{0, 50, 100, 200, 300} {
		hosts := active + active*pct/100
		row := fmt.Sprintf("%13d %%  %8d", pct, hosts)
		for _, name := range []string{"none", "swap", "cr"} {
			tech, err := strategy.ByName(name)
			if err != nil {
				panic(err)
			}
			var acc stats.Accumulator
			for rep := 0; rep < reps; rep++ {
				kernel := simkern.New()
				plat := platform.New(kernel,
					platform.Default(hosts, loadgen.NewOnOff(loadP)),
					rng.NewSource(500+int64(rep)))
				res := tech.Run(plat, strategy.Scenario{
					Active: active, App: application, Policy: core.Greedy(),
				})
				acc.Add(res.TotalTime)
			}
			row += fmt.Sprintf(" %9.0f s", acc.Mean())
		}
		fmt.Println(row)
	}

	fmt.Println("\nthe paper's observation holds: swapping needs a substantial spare")
	fmt.Println("pool (~100% over-allocation) before the benefit is large, because a")
	fmt.Println("small pool is quickly exhausted by load arriving on the spares too.")
}
