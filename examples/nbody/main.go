// Nbody: the paper's validation-application class — particle dynamics —
// running live on the swapping runtime. A 64-particle gravitational
// system integrates on 2 of 5 ranks; midway, one active host is crushed
// by synthetic load and the safe policy relocates the process. The demo
// verifies the physics across the swap: total momentum is conserved to
// round-off and the trajectory matches a swap-free reference run exactly.
//
// Run with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/swaprt"
)

const (
	particles = 64
	active    = 2
	steps     = 60
)

// busyWait spins for d, emulating compute that slows under CPU
// contention.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(end) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-12
		}
	}
	_ = x
}

func run(worldSize int, probe func(int) float64, slowdown func(int) float64, logf func(string, ...any)) ([]float64, float64, float64) {
	nb := apps.NBody{N: particles, G: 0.002, Dt: 0.01, Softening: 0.1}
	var mu sync.Mutex
	finalX := make([]float64, particles)
	var px, py float64
	world := mpi.NewWorld(worldSize)
	err := swaprt.Run(world, swaprt.Config{
		Active: active,
		Policy: core.Safe(),
		Probe:  probe,
		Logf:   logf,
	}, func(s *swaprt.Session) error {
		iter := 0
		var st *apps.NBodyState
		if s.Rank() < active {
			st = nb.Init(active, s.Rank(), 2003)
		} else {
			st = &apps.NBodyState{}
		}
		s.Register("iter", &iter)
		s.Register("lo", &st.Lo)
		s.Register("x", &st.X)
		s.Register("y", &st.Y)
		s.Register("vx", &st.VX)
		s.Register("vy", &st.VY)
		for !s.Done() && iter < steps {
			if s.Active() {
				if err := nb.Step(s.Comm(), st); err != nil {
					return err
				}
				// Emulate a heavier force computation, slowed by any
				// injected load on this rank's host.
				busyWait(time.Duration(5*slowdown(s.Rank())) * time.Millisecond)
				iter++
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		if s.Active() {
			p, q, err := nb.Momentum(s.Comm(), st)
			if err != nil {
				return err
			}
			mu.Lock()
			for i := range st.X {
				finalX[st.Lo+i] = st.X[i]
			}
			px, py = p, q
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return finalX, px, py
}

func main() {
	// Reference: no spares, equal probes — no swaps possible.
	noSlow := func(int) float64 { return 1 }
	refX, refPx, refPy := run(active, func(int) float64 { return 100 }, noSlow, nil)

	// Live run: 3 spares; rank 0's host collapses shortly after start.
	var mu sync.Mutex
	rates := []float64{100, 100, 100, 100, 100}
	go func() {
		time.Sleep(80 * time.Millisecond)
		mu.Lock()
		rates[0] = 5    // crushed
		rates[3] = 1000 // attractive spare
		mu.Unlock()
		log.Printf("load injector: rank 0's host crushed, rank 3's host idle")
	}()
	probe := func(rank int) float64 {
		mu.Lock()
		defer mu.Unlock()
		return rates[rank]
	}
	slowdown := func(rank int) float64 {
		mu.Lock()
		defer mu.Unlock()
		return 100 / rates[rank]
	}
	liveX, livePx, livePy := run(5, probe, slowdown, log.Printf)

	diverged := 0
	for i := range refX {
		if refX[i] != liveX[i] {
			diverged++
		}
	}
	fmt.Printf("\n%d particles, %d steps, %d active ranks of 5\n", particles, steps, active)
	fmt.Printf("momentum (reference): (%.2e, %.2e)\n", refPx, refPy)
	fmt.Printf("momentum (with swap): (%.2e, %.2e)\n", livePx, livePy)
	fmt.Printf("momentum drift:        %.2e\n",
		math.Hypot(livePx-refPx, livePy-refPy))
	if diverged == 0 {
		fmt.Println("trajectory check: IDENTICAL across the live process swap")
	} else {
		fmt.Printf("trajectory check: %d particles diverged — state lost!\n", diverged)
	}
}
