package repro

import (
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/strategy"
	"repro/internal/swaprt"
)

// Benchmarks of the live-runtime stack and the application kernels.

// BenchmarkLiveSwapRoundTrip measures a complete forced swap: decision,
// state transfer of ~64 KiB, and communicator rebuild, by running a
// 2-rank world that swaps on every iteration (rates flip each probe).
func BenchmarkLiveSwapRoundTrip(b *testing.B) {
	var mu sync.Mutex
	flip := false
	probe := func(rank int) float64 {
		mu.Lock()
		defer mu.Unlock()
		if (rank == 0) == flip {
			return 100
		}
		return 1000
	}
	clk := 0.0
	clock := func() float64 {
		mu.Lock()
		defer mu.Unlock()
		clk += 0.05
		return clk
	}
	world := mpi.NewWorld(2)
	b.ResetTimer()
	err := swaprt.Run(world, swaprt.Config{
		Active: 1,
		Policy: core.Greedy(),
		Probe:  probe,
		Clock:  clock,
	}, func(s *swaprt.Session) error {
		iter := 0
		state := make([]byte, 64<<10)
		s.Register("iter", &iter)
		s.Register("state", &state)
		for !s.Done() && iter < b.N {
			if s.Active() {
				mu.Lock()
				flip = !flip // make the other host look better
				mu.Unlock()
				iter++
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStateCodec1MB(b *testing.B) {
	world := mpi.NewWorld(1)
	payload := make([]byte, 1<<20)
	err := swaprt.Run(world, swaprt.Config{
		Active: 1,
		Probe:  func(int) float64 { return 1 },
	}, func(s *swaprt.Session) error {
		s.Register("payload", &payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sink discard
			if err := s.SaveCheckpoint(&sink); err != nil {
				return err
			}
			b.SetBytes(int64(sink))
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

type discard int

func (d *discard) Write(p []byte) (int, error) { *d += discard(len(p)); return len(p), nil }

func BenchmarkNBodyStep(b *testing.B) {
	nb := apps.NBody{N: 256, G: 0.001, Dt: 0.01, Softening: 0.1}
	w := mpi.NewWorld(4)
	b.ResetTimer()
	err := w.Run(func(r *mpi.Rank) error {
		c := r.World()
		st := nb.Init(c.Size(), c.Rank(), 1)
		for i := 0; i < b.N; i++ {
			if err := nb.Step(c, st); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkJacobiStep(b *testing.B) {
	j := apps.Jacobi1D{N: 4096, Left: 0, Right: 1}
	w := mpi.NewWorld(4)
	b.ResetTimer()
	err := w.Run(func(r *mpi.Rank) error {
		c := r.World()
		st := j.Init(c.Size(), c.Rank())
		for i := 0; i < b.N; i++ {
			if _, err := j.Step(c, st); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGanttRender(b *testing.B) {
	res := strategy.Result{Strategy: "swap", Swaps: 10}
	for i := 0; i < 100; i++ {
		res.Iters = append(res.Iters, strategy.IterRecord{Hosts: []int{i % 8, (i + 3) % 8, (i + 5) % 8}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strategy.Gantt(res)
	}
}
