// Package repro's benchmark harness: one testing.B benchmark per paper
// figure (reduced sweep sizes — run cmd/swapexp for the full series), the
// ablation sweeps from DESIGN.md, and micro-benchmarks of the substrates
// the simulation is built on. Each figure benchmark reports a headline
// shape metric alongside wall time, so `go test -bench=.` doubles as a
// compact reproduction report.
package repro

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/loadgen"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
)

// benchOptions keeps figure benchmarks fast but non-trivial.
func benchOptions() experiment.Options {
	return experiment.Options{Seeds: 3, Iterations: 15, BaseSeed: 20030623, Quick: true}
}

// ratio reports series a's best advantage over series b across the sweep
// (min over x of a/b), the "who wins by what factor" shape metric.
func ratio(fig *experiment.FigureResult, a, b string) float64 {
	best := 1.0
	for i := range fig.X {
		r := fig.Get(a, i).Mean / fig.Get(b, i).Mean
		if r < best {
			best = r
		}
	}
	return best
}

func BenchmarkFig1Payback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.Fig1(benchOptions())
		if len(fig.X) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(2.0, "payback_iters")
}

func BenchmarkFig2OnOffTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig2(benchOptions())
	}
}

func BenchmarkFig3HyperExpTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig3(benchOptions())
	}
}

func BenchmarkFig4Techniques(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig4(benchOptions())
	}
	b.ReportMetric(ratio(fig, "swap", "none"), "swap/none_best")
	b.ReportMetric(ratio(fig, "dlb", "none"), "dlb/none_best")
	b.ReportMetric(ratio(fig, "cr", "none"), "cr/none_best")
}

func BenchmarkFig5OverAllocation(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig5(benchOptions())
	}
	last := len(fig.X) - 1
	b.ReportMetric(fig.Get("swap", last).Mean/fig.Get("swap", 0).Mean, "swap_300pct/0pct")
}

func BenchmarkFig6ProcessSize(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig6(benchOptions())
	}
	b.ReportMetric(ratio(fig, "swap-1MB", "none"), "swap1MB/none_best")
	// For 1GB the interesting number is how harmful it gets (max ratio).
	worst := 1.0
	for i := range fig.X {
		if r := fig.Get("swap-1GB", i).Mean / fig.Get("none", i).Mean; r > worst {
			worst = r
		}
	}
	b.ReportMetric(worst, "swap1GB/none_worst")
}

func BenchmarkFig7Policies(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig7(benchOptions())
	}
	b.ReportMetric(ratio(fig, "greedy", "none"), "greedy/none_best")
	b.ReportMetric(ratio(fig, "safe", "none"), "safe/none_best")
	b.ReportMetric(ratio(fig, "friendly", "none"), "friendly/none_best")
}

func BenchmarkFig8PoliciesLargeState(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig8(benchOptions())
	}
	last := len(fig.X) - 1
	b.ReportMetric(fig.Get("greedy", last).Mean/fig.Get("none", last).Mean, "greedy/none_chaotic")
	b.ReportMetric(fig.Get("safe", last).Mean/fig.Get("none", last).Mean, "safe/none_chaotic")
}

func BenchmarkFig9HyperExp(b *testing.B) {
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig9(benchOptions())
	}
	b.ReportMetric(ratio(fig, "swap", "none"), "swap/none_best")
}

// Ablation benchmarks (DESIGN.md Section 8).

func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationHistory(benchOptions())
	}
}

func BenchmarkAblationPayback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationPayback(benchOptions())
	}
}

func BenchmarkAblationImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationImprovement(benchOptions())
	}
}

func BenchmarkAblationSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationSelector(benchOptions())
	}
}

func BenchmarkAblationForecaster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationForecaster(benchOptions())
	}
}

// Substrate micro-benchmarks.

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := simkern.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}

func BenchmarkKernelProcSwitch(b *testing.B) {
	k := simkern.New()
	k.Go("p", func(p *simkern.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

func BenchmarkLinkFairSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := simkern.New()
		l := platform.NewLink(k, 0.0005, 6e6)
		for j := 0; j < 32; j++ {
			l.Start(1e6, func() {})
		}
		k.Run()
	}
}

func BenchmarkHostComputeFinish(b *testing.B) {
	tr := loadgen.NewTrace(loadgen.NewOnOff(0.3).NewSource(rng.NewSource(1), 0))
	h := platform.NewHost(0, 500e6, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ComputeFinish(float64(i%1000), 6e10)
	}
}

func BenchmarkPolicyDecide(b *testing.B) {
	var active, spare []core.Candidate
	st := rng.NewSource(2).Stream("bench")
	for i := 0; i < 8; i++ {
		active = append(active, core.Candidate{ID: i, Rate: st.Uniform(100, 800)})
	}
	for i := 0; i < 24; i++ {
		spare = append(spare, core.Candidate{ID: 100 + i, Rate: st.Uniform(100, 800)})
	}
	in := core.DecideInput{Active: active, Spare: spare, IterTime: 120, SwapTime: 0.17}
	pol := core.Safe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(in)
	}
}

func BenchmarkPaybackDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.PaybackDistance(10, 120, 1, 2.5)
	}
}

func BenchmarkOnOffTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := loadgen.NewTrace(loadgen.NewOnOff(0.3).NewSource(rng.NewSource(int64(i)), 0))
		tr.ValueAt(86400) // one simulated day
	}
}

func BenchmarkHyperExpTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := loadgen.NewTrace(loadgen.NewHyperExp(300).NewSource(rng.NewSource(int64(i)), 0))
		tr.ValueAt(86400)
	}
}

func BenchmarkMPIPingPong(b *testing.B) {
	w := mpi.NewWorld(2)
	payload := make([]byte, 1024)
	b.ResetTimer()
	err := w.Run(func(r *mpi.Rank) error {
		c := r.World()
		for i := 0; i < b.N; i++ {
			if r.Rank() == 0 {
				if err := c.Send(1, 0, payload); err != nil {
					return err
				}
				if _, _, err := c.Recv(1, 0); err != nil {
					return err
				}
			} else {
				if _, _, err := c.Recv(0, 0); err != nil {
					return err
				}
				if err := c.Send(0, 0, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTCPSendDistinctRanks measures head-of-line blocking in the
// TCP transport: rank 0 continuously sends large (64 KiB) messages to
// rank 1 while the timed loop sends tiny messages to rank 2. When the
// transport serializes every send behind one global lock, each tiny send
// waits for a full large-message encode; with per-destination
// connections the two streams are independent.
func BenchmarkTCPSendDistinctRanks(b *testing.B) {
	benchTCPSendDistinctRanks(b, nil, mpi.Config{Size: 3, TCP: true})
}

// BenchmarkTCPSendDistinctRanksGob is the same send path over the
// fallback gob codec: the delta against the binary benchmark above is
// the cost the wire package removes from the hot path.
func BenchmarkTCPSendDistinctRanksGob(b *testing.B) {
	benchTCPSendDistinctRanks(b, nil, mpi.Config{Size: 3, TCP: true, Codec: mpi.CodecGob})
}

// BenchmarkTCPSendDistinctRanksTraced is the same send path with an
// enabled obs tracer attached, quantifying the cost of full event
// recording (the disabled-tracer overhead is the delta between the
// untraced benchmark here and the pre-obs baseline in BENCH_obs.json).
func BenchmarkTCPSendDistinctRanksTraced(b *testing.B) {
	tr := obs.New(3, obs.WithLimit(1<<16))
	tr.Enable()
	benchTCPSendDistinctRanks(b, tr, mpi.Config{Size: 3, TCP: true})
}

// BenchmarkTCPSendDistinctRanksCausal is the always-on production shape:
// Lamport piggybacking on the wire (CodecCausal's 16-byte extension)
// plus the flight recorder observing every event through the sink, with
// the tracer's own buffering off. The bench-transport gate holds this
// variant to the same 0 allocs/op as the plain binary codec — the
// causal extension is encoded into the pooled frame buffer and flight
// rings store events by value.
func BenchmarkTCPSendDistinctRanksCausal(b *testing.B) {
	tr := obs.New(3)
	rec := flight.New(3, flight.Config{Dir: b.TempDir()})
	tr.AttachSink(rec)
	benchTCPSendDistinctRanks(b, tr, mpi.Config{Size: 3, TCP: true, Causal: true})
}

func benchTCPSendDistinctRanks(b *testing.B, tr *obs.Tracer, cfg mpi.Config) {
	w, err := mpi.NewWorldWithConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w.SetTracer(tr)
	flood := bytes.Repeat([]byte{1}, 64<<10)
	small := []byte("ping")
	var stop atomic.Bool
	err = w.Run(func(r *mpi.Rank) error {
		c := r.World()
		// Handshake: establish both connections and their read loops
		// before any sustained traffic (the seed transport deadlocks
		// otherwise — see TestTCPFloodFromStart).
		if r.Rank() == 0 {
			for _, dst := range []int{1, 2} {
				if err := c.Send(dst, 2, nil); err != nil {
					return err
				}
				if _, _, err := c.Recv(dst, 2); err != nil {
					return err
				}
			}
		} else {
			if _, _, err := c.Recv(0, 2); err != nil {
				return err
			}
			if err := c.Send(0, 2, nil); err != nil {
				return err
			}
		}
		switch r.Rank() {
		case 0:
			floodDone := make(chan error, 1)
			go func() {
				for !stop.Load() {
					if err := c.Send(1, 0, flood); err != nil {
						floodDone <- err
						return
					}
				}
				floodDone <- c.Send(1, 1, nil) // tell rank 1 to stop
			}()
			time.Sleep(50 * time.Millisecond) // let the flood get going
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(2, 0, small); err != nil {
					return err
				}
			}
			b.StopTimer()
			stop.Store(true)
			if err := <-floodDone; err != nil {
				return err
			}
			return c.Send(2, 1, nil) // tell rank 2 to stop
		case 1, 2: // drain until the stop marker arrives
			for {
				_, st, err := c.Recv(0, mpi.AnyTag)
				if err != nil {
					return err
				}
				if st.Tag == 1 {
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMPIAllReduce8(b *testing.B) {
	w := mpi.NewWorld(8)
	b.ResetTimer()
	err := w.Run(func(r *mpi.Rank) error {
		c := r.World()
		for i := 0; i < b.N; i++ {
			if _, err := c.AllReduceFloat64(mpi.OpSum, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
