package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/strategy"
	"repro/internal/swaprt"
)

// TestSimAndRuntimeDecidersAgree checks that the simulator's policy
// engine and the live runtime's LocalDecider make the same call on the
// same measurements: the policies are one implementation, so a divergence
// would mean the runtime plumbing distorts inputs.
func TestSimAndRuntimeDecidersAgree(t *testing.T) {
	st := rng.NewSource(7).Stream("rates")
	for trial := 0; trial < 200; trial++ {
		nA := 1 + st.Intn(6)
		nS := st.Intn(6)
		var active, spare []core.Candidate
		var activeSet, spareSet []int
		var activeRates, spareRates []float64
		for i := 0; i < nA; i++ {
			r := st.Uniform(50, 900)
			active = append(active, core.Candidate{ID: i, Rate: r})
			activeSet = append(activeSet, i)
			activeRates = append(activeRates, r)
		}
		for i := 0; i < nS; i++ {
			r := st.Uniform(50, 900)
			spare = append(spare, core.Candidate{ID: 100 + i, Rate: r})
			spareSet = append(spareSet, 100+i)
			spareRates = append(spareRates, r)
		}
		iterTime := st.Uniform(30, 400)
		swapTime := st.Uniform(0, 50)

		for _, pol := range []core.Policy{core.Greedy(), core.Friendly()} {
			want := pol.Decide(core.DecideInput{
				Active: active, Spare: spare, IterTime: iterTime, SwapTime: swapTime,
			})
			// Fresh decider each trial: no history (windows don't apply
			// to greedy/friendly on a first sample anyway).
			d := swaprt.NewLocalDecider(pol)
			got, err := d.Decide(swaprt.DecideRequest{
				Now: 1, ActiveSet: activeSet, ActiveRates: activeRates,
				SpareSet: spareSet, SpareRates: spareRates,
				IterTime: iterTime, SwapTime: swapTime,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Swaps) != len(want) {
				t.Fatalf("trial %d %s: runtime made %d swaps, sim %d",
					trial, pol.Name, len(got.Swaps), len(want))
			}
			for i := range want {
				if got.Swaps[i].Out != want[i].Out.ID || got.Swaps[i].In != want[i].In.ID {
					t.Fatalf("trial %d %s: swap %d = %+v, want %+v",
						trial, pol.Name, i, got.Swaps[i], want[i])
				}
			}
		}
	}
}

// TestTracePipelineEndToEnd exercises record → CSV → parse → replay →
// simulate, asserting byte-identical results across two full passes.
func TestTracePipelineEndToEnd(t *testing.T) {
	run := func() float64 {
		src := rng.NewSource(303)
		model := loadgen.NewOnOff(0.3)
		var set loadgen.TraceSet
		for h := 0; h < 8; h++ {
			tr := loadgen.NewTrace(model.NewSource(src, h))
			starts, vals := tr.Segments(7200)
			var segs []loadgen.Segment
			for i := 0; i < len(starts)-1; i++ {
				segs = append(segs, loadgen.Segment{Dur: starts[i+1] - starts[i], N: vals[i]})
			}
			var buf bytes.Buffer
			if err := loadgen.WriteTraceCSV(&buf, segs, vals[len(vals)-1]); err != nil {
				t.Fatal(err)
			}
			parsed, tail, err := loadgen.ParseTraceCSV(&buf)
			if err != nil {
				t.Fatal(err)
			}
			set.Traces = append(set.Traces, loadgen.Replay{Segments: parsed, Tail: tail})
		}
		k := simkern.New()
		p := platform.New(k, platform.Default(8, set), rng.NewSource(9))
		res := strategy.Swap{}.Run(p, strategy.Scenario{
			Active: 4, App: app.Default(8), Policy: core.Greedy(),
		})
		return res.TotalTime
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trace pipeline nondeterministic: %g vs %g", a, b)
	}
}

// TestRuntimeOverTCPWithSwaps runs the live runtime on the TCP transport
// with a forced performance imbalance and verifies state integrity.
func TestRuntimeOverTCPWithSwaps(t *testing.T) {
	world, err := mpi.NewTCPWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	rates := []float64{100, 100, 1000}
	var finalSum float64
	err = swaprt.Run(world, swaprt.Config{
		Active: 2,
		Policy: core.Greedy(),
		Probe: func(rank int) float64 {
			mu.Lock()
			defer mu.Unlock()
			return rates[rank]
		},
	}, func(s *swaprt.Session) error {
		iter := 0
		sum := 0.0
		s.Register("iter", &iter)
		s.Register("sum", &sum)
		for !s.Done() && iter < 12 {
			if s.Active() {
				v, err := s.Comm().AllReduceFloat64(mpi.OpSum, 1)
				if err != nil {
					return err
				}
				sum += v
				iter++
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		if s.Active() && iter == 12 {
			mu.Lock()
			finalSum = sum
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalSum != 24 {
		t.Fatalf("final sum over TCP with swaps = %g, want 24", finalSum)
	}
}

// TestPaybackRuleOfThumbHoldsInSimulation validates the paper's headline
// guidance end to end: swapping pays when swap time < iteration time and
// hurts when it does not, on the very same platform.
func TestPaybackRuleOfThumbHoldsInSimulation(t *testing.T) {
	mk := func(state float64, seed int64) (swap, none float64) {
		a := app.Default(12).WithState(state)
		sc := strategy.Scenario{Active: 4, App: a, Policy: core.Greedy()}
		k1 := simkern.New()
		p1 := platform.New(k1, platform.Default(16, loadgen.NewOnOff(0.25)), rng.NewSource(seed))
		k2 := simkern.New()
		p2 := platform.New(k2, platform.Default(16, loadgen.NewOnOff(0.25)), rng.NewSource(seed))
		return strategy.Swap{}.Run(p1, sc).TotalTime, strategy.None{}.Run(p2, sc).TotalTime
	}
	wins, losses := 0, 0
	for seed := int64(1); seed <= 5; seed++ {
		// 1 MB state: swap time ~0.17 s << iteration time.
		if s, n := mk(1e6, seed); s < n {
			wins++
		}
		// 2 GB state: swap time ~333 s >> iteration time.
		if s, n := mk(2e9, seed); s > n {
			losses++
		}
	}
	if wins < 4 {
		t.Errorf("cheap swaps won only %d/5 seeds", wins)
	}
	if losses < 4 {
		t.Errorf("expensive swaps hurt only %d/5 seeds", losses)
	}
}
