// Command swapmgr runs a standalone swap-manager daemon: the "possibly
// remote process responsible for collecting information and making
// swapping decisions" of the paper's runtime architecture. Applications
// using the swaprt runtime point a swaprt.RemoteDecider at its address;
// each connection carries one JSON DecideRequest and receives one JSON
// DecideResponse.
//
// With -debug-addr it also serves an HTTP endpoint exposing expvar
// (including the manager's decision counters under "swapmgr"),
// net/http/pprof profiles, /metrics in Prometheus text format,
// /telemetry with the fleet-wide telemetry aggregated from the rank
// snapshots piggybacked on handler reports, and /healthz.
//
// With -store the manager becomes crash-safe: every durable transition
// (epoch proposals and commits, spare assignments, quarantines) is
// fsynced to a WAL in the store directory before the decision is acked,
// a leader lease in the same directory fences out stale incarnations,
// and a restarted manager replays snapshot+WAL instead of starting from
// amnesia. A second swapmgr pointed at the same -store directory runs as
// a standby: it waits for the lease and takes over when the leader dies.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, the
// store is compacted and the lease released, and the process exits 0.
// Losing the lease (another incarnation fenced us out) or any other
// serve failure exits non-zero.
//
// Example:
//
//	swapmgr -addr 127.0.0.1:7070 -policy safe -store /var/lib/swapmgr
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/swaprt"
	"repro/internal/swaprt/mgrstore"
	"repro/internal/swaprt/policylens"
)

// meteredDecider wraps the local decider with registry counters so the
// debug endpoint can report live decision activity, and with the
// telemetry hub that aggregates the fleet view: Decide observes the
// decision stream (verdicts, payback distances, latency) and Report
// absorbs the per-rank telemetry snapshots piggybacked on handler
// reports. It forwards Report so handler measurements still reach the
// decider's history.
type meteredDecider struct {
	inner     *swaprt.LocalDecider
	hub       *swaprt.TelemetryHub // nil-safe
	lens      *policylens.Lens     // nil-safe
	decisions *obs.Counter
	swaps     *obs.Counter
	reports   *obs.Counter
	decideNS  *obs.Counter
}

func newMeteredDecider(inner *swaprt.LocalDecider, hub *swaprt.TelemetryHub,
	lens *policylens.Lens, reg *obs.Registry) *meteredDecider {
	return &meteredDecider{
		inner:     inner,
		hub:       hub,
		lens:      lens,
		decisions: reg.Counter("swapmgr.decisions"),
		swaps:     reg.Counter("swapmgr.swaps"),
		reports:   reg.Counter("swapmgr.reports"),
		decideNS:  reg.Counter("swapmgr.decide_ns"),
	}
}

// Decide implements swaprt.Decider.
func (d *meteredDecider) Decide(req swaprt.DecideRequest) (swaprt.DecideResponse, error) {
	start := time.Now()
	resp, err := d.inner.Decide(req)
	dur := time.Since(start)
	d.decideNS.Add(uint64(dur))
	d.decisions.Inc()
	if err == nil {
		d.swaps.Add(uint64(len(resp.Swaps)))
		d.hub.ObserveDecision(req.Now, resp.Eval, len(resp.Swaps), dur.Seconds())
		d.hub.ObserveEpoch(req.Epoch, req.ActiveSet)
		if d.lens.Enabled() {
			in := core.DecideInput{IterTime: req.IterTime, SwapTime: req.SwapTime}
			for i, r := range req.ActiveSet {
				in.Active = append(in.Active, core.Candidate{ID: r, Rate: req.ActiveRates[i]})
			}
			for i, r := range req.SpareSet {
				in.Spare = append(in.Spare, core.Candidate{ID: r, Rate: req.SpareRates[i]})
			}
			d.lens.ObserveIteration(req.Now, req.IterTime)
			d.lens.ObserveDecision(policylens.Decision{
				T: req.Now, Epoch: req.Epoch, Input: in, Eval: resp.Eval,
				Swaps: len(resp.Swaps),
			})
		}
	}
	return resp, err
}

// ReportOutcome implements swaprt.OutcomeReporter: the leader's
// two-phase verdict activates (commit) or drops (abort) the lens's
// armed payback prediction. ServeManager forwards outcome messages here;
// in durable mode the DurableDecider forwards after its WAL writes.
func (d *meteredDecider) ReportOutcome(o swaprt.OutcomeMsg) error {
	committed, aborted := 0, 0
	if o.Committed {
		committed = 1
	} else {
		aborted = 1
	}
	// The manager has no leader clock; the lens falls back to the last
	// observed decision time for report timestamps.
	d.lens.ObserveOutcome(0, o.Epoch, committed, aborted)
	return nil
}

// Report implements swaprt.Reporter.
func (d *meteredDecider) Report(r swaprt.ReportMsg) error {
	d.reports.Inc()
	// Absorb only: the piggybacked snapshot already carries the probe
	// rate, and a locally observed probe series would take precedence
	// over the (richer) absorbed snapshot in the hub's report.
	d.hub.Absorb(r.Telemetry)
	return d.inner.Report(r)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		policy    = flag.String("policy", "greedy", "swap policy: greedy, safe or friendly")
		quiet     = flag.Bool("quiet", false, "suppress per-decision logging")
		debugAddr = flag.String("debug-addr", "", "opt-in HTTP debug endpoint serving expvar and pprof (e.g. 127.0.0.1:7071)")
		storeDir  = flag.String("store", "", "durable manager store directory: WAL-backed decisions, leader lease, crash recovery")
		leaseTTL  = flag.Duration("lease-ttl", 2*time.Second, "leader lease duration when -store is set; standbys take over after it expires")
		lensOn    = flag.Bool("lens", false, "arm the policy lens on the debug endpoint: payback audit + shadow-policy scoreboard at /policy (needs -debug-addr)")
	)
	flag.Parse()

	pol, err := core.Named(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(1)
	}

	var decider swaprt.Decider = swaprt.NewLocalDecider(pol)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		hub := swaprt.NewTelemetryHub(nil)
		var lens *policylens.Lens
		if *lensOn {
			lens = policylens.New(policylens.Config{Registry: reg})
			hub.SetLensProbe(lens.Report)
			log.Printf("swapmgr: policy lens armed (shadow greedy/safe/friendly)")
		}
		decider = newMeteredDecider(swaprt.NewLocalDecider(pol), hub, lens, reg)
		expvar.Publish("swapmgr", expvar.Func(reg.ExpvarFunc()))
		// DefaultServeMux carries expvar's /debug/vars and pprof's
		// /debug/pprof/* handlers via their package init side effects; the
		// observability endpoints join them.
		http.Handle("/metrics", obs.PromHandler(reg))
		http.Handle("/telemetry", swaprt.TelemetryHandler(hub))
		http.Handle("/policy", policylens.Handler(lens))
		http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapmgr:", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				log.Printf("swapmgr: debug endpoint: %v", err)
			}
		}()
		log.Printf("swapmgr: debug endpoint on http://%s (/debug/vars /metrics /telemetry /policy /healthz)", dln.Addr())
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}

	// Durable mode: wrap the decision core so every transition hits the
	// WAL before the ack, and hold the leader lease for the listen
	// address. A second daemon on the same -store directory blocks here
	// as a standby until the lease frees up.
	var (
		store     *mgrstore.FileStore
		owner     string
		lostLease atomic.Bool
		stopRenew = make(chan struct{})
	)
	if *storeDir != "" {
		clk := clock.Real{}
		store, err = mgrstore.Open(*storeDir, clk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapmgr:", err)
			os.Exit(1)
		}
		owner = fmt.Sprintf("swapmgr-%d", os.Getpid())
		for {
			_, err := store.AcquireLease(owner, ln.Addr().String(), *leaseTTL)
			if err == nil {
				break
			}
			if !errors.Is(err, mgrstore.ErrLeaseHeld) {
				fmt.Fprintln(os.Stderr, "swapmgr:", err)
				os.Exit(1)
			}
			log.Printf("swapmgr: standby: lease held elsewhere, retrying in %s", *leaseTTL/4)
			clk.Sleep(*leaseTTL / 4)
		}
		durable, err := swaprt.NewDurableDecider(decider, store, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapmgr:", err)
			os.Exit(1)
		}
		log.Printf("swapmgr: durable store %s: replayed %d WAL records, epoch %d",
			*storeDir, durable.Replayed(), durable.DurableState().Epoch)
		decider = durable
		go func() {
			t := clk.NewTicker(*leaseTTL / 3)
			defer t.Stop()
			for {
				select {
				case <-stopRenew:
					return
				case <-t.C:
					if _, err := store.AcquireLease(owner, ln.Addr().String(), *leaseTTL); err != nil {
						log.Printf("swapmgr: lease lost (%v): fenced out, shutting down", err)
						lostLease.Store(true)
						ln.Close()
						return
					}
				}
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("swapmgr: %s: shutting down", sig)
		ln.Close()
	}()

	log.Printf("swapmgr: serving policy %s on %s", pol, ln.Addr())
	serveErr := swaprt.ServeManager(ln, decider, logf)
	close(stopRenew)
	if serveErr != nil && !errors.Is(serveErr, net.ErrClosed) {
		log.Fatalf("swapmgr: %v", serveErr)
	}
	if lostLease.Load() {
		log.Fatalf("swapmgr: exited because the leader lease was lost")
	}
	if store != nil {
		// Clean handover: compact so the successor replays a snapshot, and
		// release the lease so it does not have to wait out the TTL.
		if err := store.Compact(); err != nil {
			log.Fatalf("swapmgr: compact on shutdown: %v", err)
		}
		if err := store.ReleaseLease(owner); err != nil {
			log.Fatalf("swapmgr: release lease: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Fatalf("swapmgr: close store: %v", err)
		}
	}
	log.Printf("swapmgr: clean shutdown")
}
