// Command swapmgr runs a standalone swap-manager daemon: the "possibly
// remote process responsible for collecting information and making
// swapping decisions" of the paper's runtime architecture. Applications
// using the swaprt runtime point a swaprt.RemoteDecider at its address;
// each connection carries one JSON DecideRequest and receives one JSON
// DecideResponse.
//
// Example:
//
//	swapmgr -addr 127.0.0.1:7070 -policy safe
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/core"
	"repro/internal/swaprt"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "listen address")
		policy = flag.String("policy", "greedy", "swap policy: greedy, safe or friendly")
		quiet  = flag.Bool("quiet", false, "suppress per-decision logging")
	)
	flag.Parse()

	pol, err := core.Named(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(1)
	}
	log.Printf("swapmgr: serving policy %s on %s", pol, ln.Addr())
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	if err := swaprt.ServeManager(ln, swaprt.NewLocalDecider(pol), logf); err != nil {
		log.Fatalf("swapmgr: %v", err)
	}
}
