// Command swapmgr runs a standalone swap-manager daemon: the "possibly
// remote process responsible for collecting information and making
// swapping decisions" of the paper's runtime architecture. Applications
// using the swaprt runtime point a swaprt.RemoteDecider at its address;
// each connection carries one JSON DecideRequest and receives one JSON
// DecideResponse.
//
// With -debug-addr it also serves an HTTP endpoint exposing expvar
// (including the manager's decision counters under "swapmgr"),
// net/http/pprof profiles, /metrics in Prometheus text format,
// /telemetry with the fleet-wide telemetry aggregated from the rank
// snapshots piggybacked on handler reports, and /healthz.
//
// Example:
//
//	swapmgr -addr 127.0.0.1:7070 -policy safe -debug-addr 127.0.0.1:7071
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/swaprt"
)

// meteredDecider wraps the local decider with registry counters so the
// debug endpoint can report live decision activity, and with the
// telemetry hub that aggregates the fleet view: Decide observes the
// decision stream (verdicts, payback distances, latency) and Report
// absorbs the per-rank telemetry snapshots piggybacked on handler
// reports. It forwards Report so handler measurements still reach the
// decider's history.
type meteredDecider struct {
	inner     *swaprt.LocalDecider
	hub       *swaprt.TelemetryHub // nil-safe
	decisions *obs.Counter
	swaps     *obs.Counter
	reports   *obs.Counter
	decideNS  *obs.Counter
}

func newMeteredDecider(inner *swaprt.LocalDecider, hub *swaprt.TelemetryHub, reg *obs.Registry) *meteredDecider {
	return &meteredDecider{
		inner:     inner,
		hub:       hub,
		decisions: reg.Counter("swapmgr.decisions"),
		swaps:     reg.Counter("swapmgr.swaps"),
		reports:   reg.Counter("swapmgr.reports"),
		decideNS:  reg.Counter("swapmgr.decide_ns"),
	}
}

// Decide implements swaprt.Decider.
func (d *meteredDecider) Decide(req swaprt.DecideRequest) (swaprt.DecideResponse, error) {
	start := time.Now()
	resp, err := d.inner.Decide(req)
	dur := time.Since(start)
	d.decideNS.Add(uint64(dur))
	d.decisions.Inc()
	if err == nil {
		d.swaps.Add(uint64(len(resp.Swaps)))
		d.hub.ObserveDecision(req.Now, resp.Eval, len(resp.Swaps), dur.Seconds())
		d.hub.ObserveEpoch(req.Epoch, req.ActiveSet)
	}
	return resp, err
}

// Report implements swaprt.Reporter.
func (d *meteredDecider) Report(r swaprt.ReportMsg) error {
	d.reports.Inc()
	// Absorb only: the piggybacked snapshot already carries the probe
	// rate, and a locally observed probe series would take precedence
	// over the (richer) absorbed snapshot in the hub's report.
	d.hub.Absorb(r.Telemetry)
	return d.inner.Report(r)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		policy    = flag.String("policy", "greedy", "swap policy: greedy, safe or friendly")
		quiet     = flag.Bool("quiet", false, "suppress per-decision logging")
		debugAddr = flag.String("debug-addr", "", "opt-in HTTP debug endpoint serving expvar and pprof (e.g. 127.0.0.1:7071)")
	)
	flag.Parse()

	pol, err := core.Named(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapmgr:", err)
		os.Exit(1)
	}

	var decider swaprt.Decider = swaprt.NewLocalDecider(pol)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		hub := swaprt.NewTelemetryHub(nil)
		decider = newMeteredDecider(swaprt.NewLocalDecider(pol), hub, reg)
		expvar.Publish("swapmgr", expvar.Func(reg.ExpvarFunc()))
		// DefaultServeMux carries expvar's /debug/vars and pprof's
		// /debug/pprof/* handlers via their package init side effects; the
		// observability endpoints join them.
		http.Handle("/metrics", obs.PromHandler(reg))
		http.Handle("/telemetry", swaprt.TelemetryHandler(hub))
		http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapmgr:", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				log.Printf("swapmgr: debug endpoint: %v", err)
			}
		}()
		log.Printf("swapmgr: debug endpoint on http://%s (/debug/vars /metrics /telemetry /healthz)", dln.Addr())
	}

	log.Printf("swapmgr: serving policy %s on %s", pol, ln.Addr())
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	if err := swaprt.ServeManager(ln, decider, logf); err != nil {
		log.Fatalf("swapmgr: %v", err)
	}
}
