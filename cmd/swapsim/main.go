// Command swapsim runs one simulated application execution under a
// chosen technique and policy and reports the outcome, optionally with a
// per-iteration trace — the single-scenario companion to swapexp.
//
// Example:
//
//	swapsim -tech swap -policy safe -hosts 32 -active 4 \
//	        -p 0.2 -state 100e6 -iters 30 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/obs/obsflag"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simkern"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	var (
		tech      = flag.String("tech", "swap", "technique: none, swap, dlb or cr")
		policy    = flag.String("policy", "greedy", "swap policy: greedy, safe or friendly")
		hosts     = flag.Int("hosts", 32, "allocated hosts (actives + spares)")
		active    = flag.Int("active", 4, "active processes")
		iters     = flag.Int("iters", 30, "application iterations")
		iterSec   = flag.Float64("itersec", 120, "unloaded compute seconds per iteration (reference host)")
		state     = flag.Float64("state", 1e6, "process state bytes")
		comm      = flag.Float64("comm", 1e6, "communication bytes per process per iteration")
		model     = flag.String("model", "onoff", "load model: onoff, hyperexp, trace or none")
		p         = flag.Float64("p", 0.2, "onoff load probability")
		lifetime  = flag.Float64("lifetime", 300, "hyperexp mean process lifetime (s)")
		traceFile = flag.String("tracefiles", "", "trace model: comma-separated change-point CSV files (cycled across hosts)")
		seed      = flag.Int64("seed", 1, "random seed")
		showTrace = flag.Bool("trace", false, "print the per-iteration trace")
		showGantt = flag.Bool("gantt", false, "print the host-occupancy timeline")
		compare   = flag.Bool("compare", false, "run all four techniques on the identical platform and print a comparison")

		// Custom policy knobs: any set flag overrides the named policy's
		// corresponding parameter, so arbitrary points of the paper's
		// policy space can be explored from the command line.
		payback = flag.Float64("payback", -1, "override: payback threshold in iterations (-1 = policy default)")
		minProc = flag.Float64("minproc", -1, "override: minimum process improvement fraction")
		minApp  = flag.Float64("minapp", -1, "override: minimum application improvement fraction")
		history = flag.Float64("history", -1, "override: history window seconds")
	)
	traceFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if traceFlags.Telemetry || traceFlags.MetricsOut != "" {
		// The telemetry hub and the Prometheus registry observe the live
		// runtime; a simulated run has neither wall time nor transports.
		fatal(fmt.Errorf("-telemetry/-metrics-out apply to live runs (swaprun, swapexp -live); analyze simulated traces offline with -events-out + tracecheck -analyze"))
	}

	technique, err := strategy.ByName(*tech)
	if err != nil {
		fatal(err)
	}
	pol, err := core.Named(*policy)
	if err != nil {
		fatal(err)
	}
	custom := false
	if *payback >= 0 {
		pol.PaybackThreshold, custom = *payback, true
	}
	if *minProc >= 0 {
		pol.MinProcImprovement, custom = *minProc, true
	}
	if *minApp >= 0 {
		pol.MinAppImprovement, custom = *minApp, true
	}
	if *history >= 0 {
		pol.HistoryWindow, custom = *history, true
	}
	if custom {
		pol.Name = pol.Name + "+custom"
		if err := pol.Validate(); err != nil {
			fatal(err)
		}
	}
	var load loadgen.Model
	switch *model {
	case "onoff":
		load = loadgen.NewOnOff(*p)
	case "hyperexp":
		load = loadgen.NewHyperExp(*lifetime)
	case "none":
		load = loadgen.Constant{N: 0}
	case "trace":
		if *traceFile == "" {
			fatal(fmt.Errorf("-model trace needs -tracefiles"))
		}
		var set loadgen.TraceSet
		for _, path := range strings.Split(*traceFile, ",") {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			segs, tail, err := loadgen.ParseTraceCSV(f)
			_ = f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			set.Traces = append(set.Traces, loadgen.Replay{Segments: segs, Tail: tail})
		}
		load = set
	default:
		fatal(fmt.Errorf("unknown load model %q", *model))
	}

	a := app.Iterative{
		Iterations:      *iters,
		WorkPerProcIter: *iterSec * app.RefSpeed,
		BytesPerIter:    *comm,
		StateBytes:      *state,
	}
	if *compare {
		fmt.Printf("comparing all techniques: %s, %s, %d/%d hosts, seed %d\n\n",
			load.Describe(), a, *active, *hosts, *seed)
		fmt.Printf("%-6s %12s %14s %10s %12s\n", "tech", "total (s)", "mean iter (s)", "events", "overhead (s)")
		for _, name := range []string{"none", "swap", "dlb", "cr"} {
			tech, err := strategy.ByName(name)
			if err != nil {
				fatal(err)
			}
			k := simkern.New()
			plat := platform.New(k, platform.Default(*hosts, load), rng.NewSource(*seed))
			r := tech.Run(plat, strategy.Scenario{Active: *active, App: a, Policy: pol})
			fmt.Printf("%-6s %12.1f %14.1f %10d %12.1f\n",
				name, r.TotalTime, r.MeanIterTime(), r.Swaps, r.Overhead)
		}
		return
	}

	k := simkern.New()
	plat := platform.New(k, platform.Default(*hosts, load), rng.NewSource(*seed))
	// Simulated runs trace on the virtual clock, producing the same
	// Chrome/Perfetto trace format as live swaprun executions.
	tracer, err := traceFlags.Tracer(*active, obs.WithClock(k.Now))
	if err != nil {
		fatal(err)
	}
	k.SetTracer(tracer)
	if traceFlags.Causal && tracer != nil {
		// Simulated causal clocks stamp the same MsgSend/MsgRecv
		// happens-before edges as a live -causal world, on virtual time.
		k.SetCausal(obs.NewCausal(*active))
	}
	res := technique.Run(plat, strategy.Scenario{Active: *active, App: a, Policy: pol})
	if err := traceFlags.Write(tracer, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}); err != nil {
		fatal(err)
	}

	fmt.Printf("technique       %s\n", res.Strategy)
	fmt.Printf("policy          %s\n", pol)
	fmt.Printf("load model      %s\n", load.Describe())
	fmt.Printf("application     %s\n", a)
	fmt.Printf("hosts/active    %d / %d\n", *hosts, *active)
	fmt.Printf("total time      %.1f s\n", res.TotalTime)
	fmt.Printf("startup         %.1f s\n", res.StartupTime)
	fmt.Printf("mean iteration  %.1f s\n", res.MeanIterTime())
	fmt.Printf("swap/ckpt count %d\n", res.Swaps)
	fmt.Printf("overhead        %.1f s\n", res.Overhead)
	fmt.Printf("final hosts     %v\n", res.FinalHosts)

	if *showGantt {
		fmt.Println()
		fmt.Print(strategy.Gantt(res))
	}

	if *showTrace {
		fmt.Println()
		tbl := &trace.Table{
			Title:  "per-iteration trace",
			Header: []string{"iter", "start", "compute_done", "end", "overhead", "hosts"},
		}
		for _, it := range res.Iters {
			tbl.AddRow(
				fmt.Sprint(it.Index),
				trace.FormatFloat(it.Start),
				trace.FormatFloat(it.ComputeDone),
				trace.FormatFloat(it.End),
				trace.FormatFloat(it.Overhead),
				fmt.Sprint(it.Hosts),
			)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		for _, e := range res.Events {
			fmt.Printf("%10.1f  %-10s %s\n", e.T, e.Kind, e.Detail)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapsim:", err)
	os.Exit(1)
}
