// Command tracecheck validates a Chrome/Perfetto trace_event JSON file
// produced by -trace-out: every entry must carry the required
// trace_event keys, and (unless -no-decision) at least one SwapDecision
// instant must include the payback distance and policy verdict the
// swapping policy computed. With -chaos it additionally requires the
// evidence a fault-injected run must leave behind: at least one
// Quarantine event and a Circuit "open" transition followed by a
// "close". CI's trace-smoke and chaos-smoke targets run it against
// fresh swaprun demos.
//
// With -analyze the argument is a JSONL event log (-events-out) instead:
// tracecheck replays it offline and prints a deterministic analysis
// report — swap-overhead attribution per the payback algebra, per-round
// critical path and imbalance, decision latency quantiles, and anomaly
// windows from the telemetry slowdown detector. The same trace always
// produces a byte-identical report, so reports diff cleanly across runs.
//
// With -postmortem the arguments are per-rank flight-recorder dumps
// (JSONL files or a directory of them, as written on a swap abort,
// quarantine, rank panic or world close): tracecheck merges them into a
// single causally-ordered cross-rank timeline using the Lamport clocks
// piggybacked on messages, prints it, and runs the causality
// validations (no recv before its send, per-rank Lamport monotonicity,
// epoch monotonicity) tolerating the bounded-ring truncation of old
// events. -require-abort additionally demands swap-abort or quarantine
// evidence, which CI's postmortem-smoke uses against a chaos run.
//
// Example:
//
//	swaprun -ranks 2 -active 1 -trace-out run.json && tracecheck run.json
//	swaprun -ranks 2 -active 1 -events-out run.jsonl && tracecheck -analyze run.jsonl
//	swaprun -chaos '...' -causal -flight-dir flight && tracecheck -postmortem flight
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/obs"
)

func main() {
	noDecision := flag.Bool("no-decision", false, "skip the SwapDecision payload requirement (traces from runs that never reach a decision point)")
	chaosCheck := flag.Bool("chaos", false, "require fault-injection evidence: a Quarantine event and a Circuit open followed by a close")
	analyze := flag.Bool("analyze", false, "treat the argument as a JSONL event log and print the offline analysis report")
	postmortem := flag.Bool("postmortem", false, "treat the arguments as flight-recorder dumps (files or a directory) and reconstruct the causal cross-rank timeline")
	requireAbort := flag.Bool("require-abort", false, "with -postmortem, require swap-abort or quarantine evidence in the merged timeline")
	flag.Parse()
	if *postmortem {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: tracecheck -postmortem [-require-abort] <flight-dir | dump.jsonl...>")
			os.Exit(2)
		}
		runPostmortem(flag.Args(), *requireAbort)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-no-decision|-chaos] <trace.json> | tracecheck -analyze <events.jsonl> | tracecheck -postmortem <flight-dir>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *analyze {
		runAnalyze(path)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	entries, err := obs.ValidateChromeTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	decisions := 0
	complete := 0
	for _, e := range entries {
		name, _ := e["name"].(string)
		if name != obs.KindSwapDecision.String() {
			continue
		}
		decisions++
		args, _ := e["args"].(map[string]any)
		if args == nil {
			continue
		}
		_, hasPayback := args["payback"].(float64)
		verdict, _ := args["verdict"].(string)
		if verdict == "stay" {
			// A rejected decision legitimately has no payback (the gate
			// may fire before the payback is computed); the verdict and
			// reason alone make it complete.
			if _, ok := args["reason"].(string); ok {
				complete++
			}
			continue
		}
		if hasPayback && verdict != "" {
			complete++
		}
	}

	if !*noDecision {
		if decisions == 0 {
			fatal(fmt.Errorf("%s: no SwapDecision events in trace (%d entries)", path, len(entries)))
		}
		if complete == 0 {
			fatal(fmt.Errorf("%s: %d SwapDecision events but none carry payback + verdict", path, decisions))
		}
	}

	quarantines := 0
	if *chaosCheck {
		firstOpen, lastClose := math.Inf(1), math.Inf(-1)
		opens, closes := 0, 0
		for _, e := range entries {
			name, _ := e["name"].(string)
			ts, _ := e["ts"].(float64)
			args, _ := e["args"].(map[string]any)
			detail, _ := args["detail"].(string)
			switch name {
			case obs.KindQuarantine.String():
				quarantines++
			case obs.KindCircuit.String():
				switch detail {
				case "open":
					opens++
					firstOpen = math.Min(firstOpen, ts)
				case "close":
					closes++
					lastClose = math.Max(lastClose, ts)
				}
			}
		}
		if quarantines == 0 {
			fatal(fmt.Errorf("%s: chaos run left no Quarantine event", path))
		}
		if opens == 0 || closes == 0 {
			fatal(fmt.Errorf("%s: circuit transitions open=%d close=%d, want at least one of each", path, opens, closes))
		}
		if lastClose < firstOpen {
			fatal(fmt.Errorf("%s: circuit closed (ts %.0f) only before it first opened (ts %.0f)", path, lastClose, firstOpen))
		}
	}

	fmt.Printf("tracecheck: %s ok — %d entries, %d decisions (%d with full payback payload)", path, len(entries), decisions, complete)
	if *chaosCheck {
		fmt.Printf(", %d quarantines + circuit recovery", quarantines)
	}
	fmt.Println()
}

// runAnalyze reads a JSONL event log and prints the deterministic
// offline analysis report.
func runAnalyze(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	if err := obs.Analyze(events).WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
