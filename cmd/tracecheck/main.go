// Command tracecheck validates a Chrome/Perfetto trace_event JSON file
// produced by -trace-out: every entry must carry the required
// trace_event keys, and (unless -no-decision) at least one SwapDecision
// instant must include the payback distance and policy verdict the
// swapping policy computed. With -chaos it additionally requires the
// evidence a fault-injected run must leave behind: at least one
// Quarantine event and a Circuit "open" transition followed by a
// "close". CI's trace-smoke and chaos-smoke targets run it against
// fresh swaprun demos.
//
// With -failover it requires manager-restart evidence instead: at
// least one MgrCrash followed (in trace time) by a MgrRecover whose
// detail proves a WAL replay, decision epochs nondecreasing across the
// whole run (a fenced stale leader can never re-commit an old epoch),
// and at least one decision after the recovery showing the world kept
// swapping under the reborn manager. CI's failover-smoke target runs
// it against an accelerated run that kills swapmgr mid-swap.
//
// With -analyze the argument is a JSONL event log (-events-out) instead:
// tracecheck replays it offline and prints a deterministic analysis
// report — swap-overhead attribution per the payback algebra, per-round
// critical path and imbalance, decision latency quantiles, and anomaly
// windows from the telemetry slowdown detector. The same trace always
// produces a byte-identical report, so reports diff cleanly across runs.
//
// With -audit the argument is a JSONL event log: tracecheck replays the
// policy lens contract offline — every committed swap must carry a
// realized-payback attribution (unless too close to the trace end to
// score), every realization must be internally consistent with the
// tolerance, and the shadow-policy scoreboard is summarized per policy.
// Mispredictions are reported as findings; contract violations exit
// non-zero. CI's lens-smoke target runs it against a fresh -lens run.
//
// With -postmortem the arguments are per-rank flight-recorder dumps
// (JSONL files or a directory of them, as written on a swap abort,
// quarantine, rank panic or world close): tracecheck merges them into a
// single causally-ordered cross-rank timeline using the Lamport clocks
// piggybacked on messages, prints it, and runs the causality
// validations (no recv before its send, per-rank Lamport monotonicity,
// epoch monotonicity) tolerating the bounded-ring truncation of old
// events. -require-abort additionally demands swap-abort or quarantine
// evidence, which CI's postmortem-smoke uses against a chaos run.
//
// Example:
//
//	swaprun -ranks 2 -active 1 -trace-out run.json && tracecheck run.json
//	swaprun -ranks 2 -active 1 -events-out run.jsonl && tracecheck -analyze run.jsonl
//	swaprun -chaos '...' -causal -flight-dir flight && tracecheck -postmortem flight
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/swaprt/policylens"
)

func main() {
	noDecision := flag.Bool("no-decision", false, "skip the SwapDecision payload requirement (traces from runs that never reach a decision point)")
	chaosCheck := flag.Bool("chaos", false, "require fault-injection evidence: a Quarantine event and a Circuit open followed by a close")
	failoverCheck := flag.Bool("failover", false, "require manager-restart evidence: MgrCrash then a WAL-replay MgrRecover, nondecreasing decision epochs, and a post-recovery decision")
	analyze := flag.Bool("analyze", false, "treat the argument as a JSONL event log and print the offline analysis report")
	audit := flag.Bool("audit", false, "treat the argument as a JSONL event log and verify the policy-lens contract: committed swaps carry realized-payback attribution")
	auditTolerance := flag.Float64("audit-tolerance", 0, "with -audit, relative payback error counted as a misprediction (0 = lens default)")
	postmortem := flag.Bool("postmortem", false, "treat the arguments as flight-recorder dumps (files or a directory) and reconstruct the causal cross-rank timeline")
	requireAbort := flag.Bool("require-abort", false, "with -postmortem, require swap-abort or quarantine evidence in the merged timeline")
	flag.Parse()
	if *postmortem {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: tracecheck -postmortem [-require-abort] <flight-dir | dump.jsonl...>")
			os.Exit(2)
		}
		runPostmortem(flag.Args(), *requireAbort)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-no-decision|-chaos|-failover] <trace.json> | tracecheck -analyze <events.jsonl> | tracecheck -postmortem <flight-dir>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *analyze {
		runAnalyze(path)
		return
	}
	if *audit {
		runAudit(path, *auditTolerance)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	entries, err := obs.ValidateChromeTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	decisions := 0
	complete := 0
	for _, e := range entries {
		name, _ := e["name"].(string)
		if name != obs.KindSwapDecision.String() {
			continue
		}
		decisions++
		args, _ := e["args"].(map[string]any)
		if args == nil {
			continue
		}
		_, hasPayback := args["payback"].(float64)
		verdict, _ := args["verdict"].(string)
		if verdict == "stay" {
			// A rejected decision legitimately has no payback (the gate
			// may fire before the payback is computed); the verdict and
			// reason alone make it complete.
			if _, ok := args["reason"].(string); ok {
				complete++
			}
			continue
		}
		if hasPayback && verdict != "" {
			complete++
		}
	}

	if !*noDecision {
		if decisions == 0 {
			fatal(fmt.Errorf("%s: no SwapDecision events in trace (%d entries)", path, len(entries)))
		}
		if complete == 0 {
			fatal(fmt.Errorf("%s: %d SwapDecision events but none carry payback + verdict", path, decisions))
		}
	}

	quarantines := 0
	if *chaosCheck {
		firstOpen, lastClose := math.Inf(1), math.Inf(-1)
		opens, closes := 0, 0
		for _, e := range entries {
			name, _ := e["name"].(string)
			ts, _ := e["ts"].(float64)
			args, _ := e["args"].(map[string]any)
			detail, _ := args["detail"].(string)
			switch name {
			case obs.KindQuarantine.String():
				quarantines++
			case obs.KindCircuit.String():
				switch detail {
				case "open":
					opens++
					firstOpen = math.Min(firstOpen, ts)
				case "close":
					closes++
					lastClose = math.Max(lastClose, ts)
				}
			}
		}
		if quarantines == 0 {
			fatal(fmt.Errorf("%s: chaos run left no Quarantine event", path))
		}
		if opens == 0 || closes == 0 {
			fatal(fmt.Errorf("%s: circuit transitions open=%d close=%d, want at least one of each", path, opens, closes))
		}
		if lastClose < firstOpen {
			fatal(fmt.Errorf("%s: circuit closed (ts %.0f) only before it first opened (ts %.0f)", path, lastClose, firstOpen))
		}
	}

	crashes, recoveries := 0, 0
	if *failoverCheck {
		crashes, recoveries = checkFailover(path, entries)
	}

	fmt.Printf("tracecheck: %s ok — %d entries, %d decisions (%d with full payback payload)", path, len(entries), decisions, complete)
	if *chaosCheck {
		fmt.Printf(", %d quarantines + circuit recovery", quarantines)
	}
	if *failoverCheck {
		fmt.Printf(", %d manager crashes + %d recoveries (WAL replay verified)", crashes, recoveries)
	}
	fmt.Println()
}

// checkFailover enforces the evidence a manager kill/restart run must
// leave behind: a crash, a later recovery that replayed the WAL, epoch
// fencing (decision epochs never step backwards), and a decision after
// the recovery proving the reborn manager kept serving. It fatals on
// the first violation and returns (crashes, recoveries) on success.
func checkFailover(path string, entries []map[string]any) (int, int) {
	firstCrash := math.Inf(1)
	walRecover := math.Inf(1)
	crashes, recoveries := 0, 0
	type decision struct {
		ts, epoch float64
	}
	var decisions []decision
	for _, e := range entries {
		name, _ := e["name"].(string)
		ts, _ := e["ts"].(float64)
		args, _ := e["args"].(map[string]any)
		detail, _ := args["detail"].(string)
		switch name {
		case obs.KindMgrCrash.String():
			crashes++
			firstCrash = math.Min(firstCrash, ts)
		case obs.KindMgrRecover.String():
			recoveries++
			if strings.Contains(detail, "wal-replay") && strings.Contains(detail, "records=") &&
				!strings.Contains(detail, "records=0 ") && ts >= firstCrash {
				walRecover = math.Min(walRecover, ts)
			}
		case obs.KindSwapDecision.String():
			epoch, _ := args["epoch"].(float64) // omitted while zero
			decisions = append(decisions, decision{ts: ts, epoch: epoch})
		}
	}
	if crashes == 0 {
		fatal(fmt.Errorf("%s: failover run left no MgrCrash event", path))
	}
	if math.IsInf(walRecover, 1) {
		fatal(fmt.Errorf("%s: no MgrRecover after the crash carries WAL-replay evidence (%d recoveries total)", path, recoveries))
	}
	sort.SliceStable(decisions, func(i, j int) bool { return decisions[i].ts < decisions[j].ts })
	post := 0
	for i, d := range decisions {
		if i > 0 && d.epoch < decisions[i-1].epoch {
			fatal(fmt.Errorf("%s: decision epoch stepped backwards %g -> %g at ts %.0f — a stale leader escaped the fence",
				path, decisions[i-1].epoch, d.epoch, d.ts))
		}
		if d.ts > walRecover {
			post++
		}
	}
	if post == 0 {
		fatal(fmt.Errorf("%s: no SwapDecision after the WAL-replay recovery (ts %.0f) — the reborn manager never served", path, walRecover))
	}
	return crashes, recoveries
}

// runAnalyze reads a JSONL event log and prints the deterministic
// offline analysis report.
func runAnalyze(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	if err := obs.Analyze(events).WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
}

// runAudit reads a JSONL event log, replays the policy-lens contract
// and prints the deterministic audit report, exiting non-zero when the
// trace violates it.
func runAudit(path string, tolerance float64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	res := policylens.Audit(events, policylens.AuditConfig{Tolerance: tolerance})
	if err := res.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
	if !res.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
