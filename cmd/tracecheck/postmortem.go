package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// runPostmortem merges per-rank flight-recorder dumps into one causally
// ordered cross-rank timeline, prints it, and runs the causality
// validations. Violations — and, with requireAbort, missing swap-abort
// evidence — are fatal, so CI can gate on the exit code.
func runPostmortem(args []string, requireAbort bool) {
	paths, err := expandDumps(args)
	if err != nil {
		fatal(err)
	}
	var merged []obs.Event
	reasons := map[string]bool{}
	fmt.Printf("postmortem: merging %d flight dumps\n", len(paths))
	for _, p := range paths {
		evs, err := readDump(p)
		if err != nil {
			fatal(err)
		}
		reason := "(no dump marker)"
		if len(evs) > 0 && evs[0].Kind == obs.KindRuntimeError &&
			strings.HasPrefix(evs[0].Detail, "flight-dump: ") {
			reason = strings.TrimPrefix(evs[0].Detail, "flight-dump: ")
			evs = evs[1:] // the marker is dump metadata, not runtime history
		}
		reasons[reason] = true
		fmt.Printf("  %s: %d events, dumped on %q\n", p, len(evs), reason)
		merged = append(merged, evs...)
	}
	if len(merged) == 0 {
		fatal(fmt.Errorf("postmortem: dumps contain no events"))
	}
	obs.SortCausal(merged)

	fmt.Printf("\n== causal cross-rank timeline (%d events) ==\n", len(merged))
	for _, ev := range merged {
		fmt.Println(formatEvent(ev))
	}

	check := obs.CheckCausality(merged)
	fmt.Printf("\n== causality validations ==\n")
	fmt.Printf("sends=%d recvs=%d matched_edges=%d truncated=%d max_clock=%d\n",
		check.Sends, check.Recvs, check.Matched, check.Truncated, check.MaxClock)
	for _, v := range check.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}

	aborts, quarantines := 0, 0
	for _, ev := range merged {
		switch ev.Kind {
		case obs.KindSwapAbort:
			aborts++
		case obs.KindQuarantine:
			quarantines++
		}
	}
	fmt.Printf("abort evidence: %d swap aborts, %d quarantines\n", aborts, quarantines)

	if !check.Ok() {
		fatal(fmt.Errorf("postmortem: %d causality violations", len(check.Violations)))
	}
	if requireAbort && aborts == 0 && quarantines == 0 {
		fatal(fmt.Errorf("postmortem: -require-abort but the merged timeline holds no SwapAbort or Quarantine event"))
	}
	fmt.Printf("postmortem: ok — %d dumps, %d events, causally ordered, validations passed\n",
		len(paths), len(merged))
}

// expandDumps turns the argument list into the dump files to merge: a
// single directory argument expands to its *.jsonl files (sorted),
// anything else is taken as an explicit file list.
func expandDumps(args []string) ([]string, error) {
	if len(args) == 1 {
		st, err := os.Stat(args[0])
		if err != nil {
			return nil, err
		}
		if st.IsDir() {
			paths, err := filepath.Glob(filepath.Join(args[0], "*.jsonl"))
			if err != nil {
				return nil, err
			}
			if len(paths) == 0 {
				return nil, fmt.Errorf("postmortem: no *.jsonl dumps in %s", args[0])
			}
			sort.Strings(paths)
			return paths, nil
		}
	}
	return args, nil
}

func readDump(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// formatEvent renders one timeline line: timestamp, rank, kind, then
// whichever optional fields the event carries.
func formatEvent(ev obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%14.6f] rank %2d %-13s", ev.T, ev.Rank, ev.Kind.String())
	if ev.Peer != 0 || ev.Kind == obs.KindMsgSend || ev.Kind == obs.KindMsgRecv {
		fmt.Fprintf(&b, " peer=%d", ev.Peer)
	}
	if ev.LC != 0 {
		fmt.Fprintf(&b, " lc=%d seq=%d", ev.LC, ev.Seq)
	}
	if ev.PeerLC != 0 {
		fmt.Fprintf(&b, " peer_lc=%d", ev.PeerLC)
	}
	if ev.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", ev.Epoch)
	}
	if ev.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", ev.Bytes)
	}
	if ev.Detail != "" {
		fmt.Fprintf(&b, " %q", ev.Detail)
	}
	return b.String()
}
