// Command swapvet runs the project's static-analysis suite: six analyzers
// (simdeterminism, lockedio, deadlineio, mpierr, obsdiscipline,
// clockdiscipline) encoding the runtime invariants the codebase depends on.
// It is standard-library only — package loading is `go list` plus the
// go/importer source importer — and exits non-zero when any finding survives
// the //swapvet:ignore directives. The directives themselves are audited:
// naming an unknown analyzer or omitting the `-- rationale` is a finding.
//
// Usage:
//
//	swapvet [-C dir] [-run names] [-list] [patterns...]
//
// Patterns default to ./... relative to the module root (-C, default ".").
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module directory to analyze")
	run := flag.String("run", "", "comma-separated analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.ByName(*run)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "swapvet: no analyzer matches %q\n", *run)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swapvet: %v\n", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		for _, f := range analysis.RunAll(analyzers, pkg) {
			fmt.Printf("%s\n", f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "swapvet: %d finding(s)\n", total)
		os.Exit(1)
	}
}
