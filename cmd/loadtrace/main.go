// Command loadtrace emits CPU load traces from the paper's load models
// (Figures 2 and 3) as CSV time series, for inspection or for replay via
// the loadgen.Replay model.
//
// Example:
//
//	loadtrace -model onoff -p 0.3 -q 0.08 -horizon 3600
//	loadtrace -model hyperexp -lifetime 300 -horizon 3600
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/loadgen"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		model    = flag.String("model", "onoff", "load model: onoff or hyperexp")
		p        = flag.Float64("p", 0.3, "onoff: per-step load probability")
		q        = flag.Float64("q", 0.08, "onoff: per-step unload probability")
		step     = flag.Float64("step", loadgen.DefaultStep, "model step seconds")
		lifetime = flag.Float64("lifetime", 300, "hyperexp: mean process lifetime (s)")
		arrival  = flag.Float64("arrival", 0.05, "hyperexp: arrival probability per step")
		horizon  = flag.Float64("horizon", 3600, "trace length (s)")
		interval = flag.Float64("interval", 0, "sampling interval (s); 0 = model step")
		seed     = flag.Int64("seed", 1, "random seed")
		segments = flag.Bool("segments", false, "emit change-point segments instead of samples")
		plot     = flag.Bool("plot", false, "render an ASCII chart instead of CSV")
	)
	flag.Parse()

	var m loadgen.Model
	switch *model {
	case "onoff":
		m = loadgen.OnOff{P: *p, Q: *q, Step: *step}
	case "hyperexp":
		h := loadgen.NewHyperExp(*lifetime)
		h.ArrivalProb = *arrival
		h.Step = *step
		m = h
	default:
		fmt.Fprintf(os.Stderr, "loadtrace: unknown model %q\n", *model)
		os.Exit(2)
	}

	tr := loadgen.NewTrace(m.NewSource(rng.NewSource(*seed), 0))
	if *plot {
		iv := *interval
		if iv <= 0 {
			iv = *step
		}
		samples := tr.Sample(*horizon, iv)
		p := &trace.Plot{
			Title:  fmt.Sprintf("%s seed=%d", m.Describe(), *seed),
			XLabel: "time (s)", YLabel: "competing processes",
			Height: 8,
		}
		ys := make([]float64, len(samples))
		for i, v := range samples {
			p.X = append(p.X, float64(i)*iv)
			ys[i] = float64(v)
		}
		p.Series = []trace.PlotSeries{{Name: "load", Y: ys}}
		if err := p.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "loadtrace:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# %s seed=%d\n", m.Describe(), *seed)
	if *segments {
		starts, vals := tr.Segments(*horizon)
		fmt.Println("start_s,competing_processes")
		for i := range starts {
			if starts[i] > *horizon {
				break
			}
			fmt.Printf("%.3f,%d\n", starts[i], vals[i])
		}
		return
	}
	iv := *interval
	if iv <= 0 {
		iv = *step
	}
	fmt.Println("time_s,competing_processes")
	for i, v := range tr.Sample(*horizon, iv) {
		fmt.Printf("%.3f,%d\n", float64(i)*iv, v)
	}
}
