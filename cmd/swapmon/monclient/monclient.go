// Package monclient is the non-UI core of the swapmon dashboard: it
// fetches /telemetry documents from a runtime or manager debug
// endpoint, renders them as deterministic text onto a caller-supplied
// writer, and checks machine-verifiable conditions for the -once mode.
// Keeping it free of direct console output (swapvet obsdiscipline
// covers this package) means the same code drives the interactive
// dashboard, the CI smoke check and tests.
package monclient

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs/series"
	"repro/internal/swaprt"
)

// URL builds the /telemetry URL for a debug address. A bare host:port
// gets the scheme and path added; an http(s) URL is used as-is.
func URL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr + "/telemetry"
}

// Fetch retrieves and decodes one telemetry report. A nil client
// selects http.DefaultClient; set a Timeout on the client you pass so a
// hung endpoint cannot stall the poll loop.
func Fetch(client *http.Client, addr string) (swaprt.TelemetryReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var rep swaprt.TelemetryReport
	resp, err := client.Get(URL(addr))
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("monclient: GET %s: %s", URL(addr), resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("monclient: decode %s: %v", URL(addr), err)
	}
	return rep, nil
}

// Anomalies sums the per-rank anomaly counts.
func Anomalies(rep swaprt.TelemetryReport) int {
	n := 0
	for _, r := range rep.Ranks {
		n += r.Anomalies
	}
	return n
}

// Check verifies the report against the -once acceptance conditions:
// at least minSwaps committed swaps and minAnomalies detected
// slowdowns, with per-rank telemetry present. It returns nil when all
// hold and a descriptive error naming the first unmet condition
// otherwise.
func Check(rep swaprt.TelemetryReport, minSwaps, minAnomalies int) error {
	if len(rep.Ranks) == 0 {
		return fmt.Errorf("monclient: no per-rank telemetry yet")
	}
	if rep.Decisions.Swaps < minSwaps {
		return fmt.Errorf("monclient: %d committed swaps, want >= %d", rep.Decisions.Swaps, minSwaps)
	}
	if n := Anomalies(rep); n < minAnomalies {
		return fmt.Errorf("monclient: %d anomalies, want >= %d", n, minAnomalies)
	}
	return nil
}

// CheckLens verifies the policy-lens acceptance conditions for -once:
// at least minShadow shadow-policy decisions replayed, and (when
// maxMispredict >= 0) a mispredict fraction no worse than it. It
// returns nil when the gates hold; a report without a lens section
// fails only when a gate was actually requested.
func CheckLens(rep swaprt.TelemetryReport, minShadow int, maxMispredict float64) error {
	if minShadow <= 0 && maxMispredict < 0 {
		return nil
	}
	l := rep.Lens
	if l == nil || !l.Enabled {
		return fmt.Errorf("monclient: lens gates requested but the runtime has no policy lens armed")
	}
	if n := l.ShadowDecisions(); n < minShadow {
		return fmt.Errorf("monclient: %d shadow decisions, want >= %d", n, minShadow)
	}
	if maxMispredict >= 0 {
		if f := l.MispredictFraction(); f > maxMispredict {
			return fmt.Errorf("monclient: mispredict fraction %.3g (%d/%d realized), want <= %.3g",
				f, l.Mispredicts, l.Realized, maxMispredict)
		}
	}
	return nil
}

// quant renders a Quantiles as a compact fixed-order cell.
func quant(q series.Quantiles, unit string) string {
	if q.N == 0 {
		return "-"
	}
	return fmt.Sprintf("p50=%.4g%s p90=%.4g%s p99=%.4g%s max=%.4g%s (n=%d)",
		q.P50, unit, q.P90, unit, q.P99, unit, q.Max, unit, q.N)
}

// joinInts renders ints as a comma-separated list ("-" when empty).
func joinInts(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// Render writes the dashboard view of one report: a control-state
// header, one line per rank (iteration quantiles, probe rate, anomaly
// state) and the decision summary (verdicts, committed/aborted swaps,
// payback and latency distributions). Output is deterministic for a
// given report: ranks are sorted, map-backed fields arrive pre-sorted
// from the hub.
func Render(w io.Writer, rep swaprt.TelemetryReport) {
	ranks := append([]swaprt.RankTelemetry(nil), rep.Ranks...)
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })

	circuit := rep.Circuit
	if circuit == "" {
		circuit = "-"
	}
	fmt.Fprintf(w, "swapmon t=%.2fs epoch=%d active=[%s] quarantined=[%s] circuit=%s\n",
		rep.Now, rep.Epoch, joinInts(rep.ActiveSet), joinInts(rep.Quarantined), circuit)

	// Causal/flight lines appear only when the run has them armed: the
	// report fields are omitempty pointers, so pre-causal runtimes (and
	// recorded reports from them) render exactly as before.
	if cz := rep.Causal; cz != nil && cz.Enabled {
		fmt.Fprintf(w, "causal: lamport max=%d sends=%d\n", cz.MaxClock, cz.Sends)
	}
	if fl := rep.Flight; fl != nil && fl.Enabled {
		dump := "-"
		if fl.Dumps > 0 {
			dump = fmt.Sprintf("%d (last %q)", fl.Dumps, fl.LastDump)
		}
		fmt.Fprintf(w, "flight: buffered=%d observed=%d dumps=%s dir=%s\n",
			fl.Buffered, fl.Observed, dump, fl.Dir)
	}

	fmt.Fprintf(w, "%-6s %8s %12s %-44s %s\n", "rank", "iters", "rate", "iter_time", "anomalies")
	for _, r := range ranks {
		rate := "-"
		if r.Rate != 0 {
			rate = fmt.Sprintf("%.4g", r.Rate)
		}
		anom := fmt.Sprintf("%d", r.Anomalies)
		if r.LastAnomaly != nil {
			anom = fmt.Sprintf("%d (last t=%.2fs %.4gs z=%.1f)",
				r.Anomalies, r.LastAnomaly.T, r.LastAnomaly.Value, r.LastAnomaly.Z)
		}
		fmt.Fprintf(w, "%-6d %8d %12s %-44s %s\n",
			r.Rank, r.Iters, rate, quant(r.IterTime, "s"), anom)
	}

	d := rep.Decisions
	fmt.Fprintf(w, "decisions: %d (%d swap verdicts) swaps=%d aborts=%d\n",
		d.Count, d.SwapVerdicts, d.Swaps, d.Aborts)
	fmt.Fprintf(w, "  payback: %s\n", quant(d.Payback, ""))
	fmt.Fprintf(w, "  latency: %s\n", quant(d.Latency, "s"))
	if d.LastVerdict != "" {
		last := d.LastVerdict
		if d.LastReason != "" {
			last += " (" + d.LastReason + ")"
		}
		if d.LastPayback > 0 {
			last += fmt.Sprintf(" payback=%.4g", d.LastPayback)
		}
		fmt.Fprintf(w, "  last: %s\n", last)
	}

	// Lens panel: the payback audit and shadow scoreboard, present only
	// when the runtime armed -lens (omitempty pointer, like causal and
	// flight above).
	if l := rep.Lens; l != nil && l.Enabled {
		fmt.Fprintf(w, "lens: decisions=%d commits=%d aborts=%d tracking=%d realized=%d mispredicts=%d anomalies=%d (tol %.3g)\n",
			l.Decisions, l.Commits, l.Aborts, l.Tracking, l.Realized,
			l.Mispredicts, l.Anomalies, l.Tolerance)
		fmt.Fprintf(w, "  pred err: %s\n", quant(l.ErrSeries, ""))
		if last := l.Last; last != nil {
			verdict := "ok"
			switch {
			case last.NeverPaysOff:
				verdict = "never pays back"
			case !last.OK:
				verdict = "mispredict"
			}
			fmt.Fprintf(w, "  last realized: epoch=%d pred=%.4g realized=%.4g err=%.3g (%s)\n",
				last.Epoch, last.PredPayback, last.RealPayback, last.Err, verdict)
		}
		for _, s := range l.Shadow {
			fmt.Fprintf(w, "  shadow %-9s %d decisions agree=%d would-swap=%d would-stay=%d iters won=%.3g lost=%.3g\n",
				s.Policy+":", s.Decisions, s.Agreements, s.WouldSwap, s.WouldStay,
				s.ItersWon, s.ItersLost)
		}
	}
}
