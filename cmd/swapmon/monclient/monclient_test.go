package monclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/series"
	"repro/internal/swaprt"
)

// sampleReport mirrors what a live hub serves: two local ranks (one
// with an anomaly), a quarantined spare, an open-then-recovered
// circuit, and a decision history with payback distances.
func sampleReport() swaprt.TelemetryReport {
	return swaprt.TelemetryReport{
		Now:         12.5,
		Epoch:       2,
		ActiveSet:   []int{0, 3},
		Quarantined: []int{2},
		Circuit:     "half-open",
		Ranks: []swaprt.RankTelemetry{
			{Rank: 3, Now: 12.5, Iters: 40, IterTime: series.Quantiles{N: 40, Mean: 0.02, P50: 0.02, P90: 0.021, P99: 0.022, Max: 0.025}, Rate: 980},
			{Rank: 0, Now: 12.5, Iters: 42,
				IterTime:  series.Quantiles{N: 42, Mean: 0.05, P50: 0.02, P90: 0.16, P99: 0.17, Max: 0.18},
				Rate:      120,
				Anomalies: 2,
				LastAnomaly: &series.Anomaly{
					T: 10.2, Value: 0.18, Mean: 0.02, Std: 0.004, Z: 40,
				}},
		},
		Decisions: swaprt.DecisionTelemetry{
			Count: 9, SwapVerdicts: 2, Swaps: 1, Aborts: 1,
			Payback:     series.Quantiles{N: 2, Mean: 4, P50: 3, P90: 5, P99: 5, Max: 5},
			Latency:     series.Quantiles{N: 9, Mean: 0.001, P50: 0.0008, P90: 0.002, P99: 0.003, Max: 0.003},
			LastVerdict: "swap", LastReason: "payback", LastPayback: 5,
		},
	}
}

func TestFetch(t *testing.T) {
	rep := sampleReport()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/telemetry" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(rep); err != nil {
			t.Errorf("encode: %v", err)
		}
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	got, err := Fetch(srv.Client(), addr)
	if err != nil {
		t.Fatalf("Fetch(%q): %v", addr, err)
	}
	if got.Epoch != rep.Epoch || len(got.Ranks) != 2 || got.Decisions.Swaps != 1 {
		t.Fatalf("Fetch round-trip mismatch: %+v", got)
	}
	if got.Ranks[1].Rank != 0 && got.Ranks[0].Rank != 0 {
		t.Fatalf("missing rank 0 in %+v", got.Ranks)
	}

	// Full URL form is used as-is.
	if _, err := Fetch(srv.Client(), srv.URL+"/telemetry"); err != nil {
		t.Fatalf("Fetch(full URL): %v", err)
	}

	// Non-200 is an error, not a zero report.
	if _, err := Fetch(srv.Client(), srv.URL+"/nope"); err == nil {
		t.Fatal("Fetch of 404 path: want error")
	}
}

func TestCheck(t *testing.T) {
	rep := sampleReport()
	if err := Check(rep, 1, 1); err != nil {
		t.Fatalf("Check(1,1): %v", err)
	}
	if err := Check(rep, 2, 1); err == nil || !strings.Contains(err.Error(), "swaps") {
		t.Fatalf("Check(2,1) = %v, want swaps error", err)
	}
	if err := Check(rep, 1, 3); err == nil || !strings.Contains(err.Error(), "anomalies") {
		t.Fatalf("Check(1,3) = %v, want anomalies error", err)
	}
	if err := Check(swaprt.TelemetryReport{}, 0, 0); err == nil {
		t.Fatal("Check of empty report: want error (no per-rank telemetry)")
	}
	if n := Anomalies(rep); n != 2 {
		t.Fatalf("Anomalies = %d, want 2", n)
	}
}

func TestRenderDeterministic(t *testing.T) {
	rep := sampleReport()
	var a, b strings.Builder
	Render(&a, rep)
	Render(&b, rep)
	if a.String() != b.String() {
		t.Fatal("Render is not deterministic for the same report")
	}
	out := a.String()
	for _, want := range []string{
		"epoch=2",
		"active=[0,3]",
		"quarantined=[2]",
		"circuit=half-open",
		"p50=0.02s",
		"z=40.0",
		"decisions: 9 (2 swap verdicts) swaps=1 aborts=1",
		"payback: p50=3 p90=5",
		"last: swap (payback) payback=5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Ranks render sorted regardless of input order.
	if strings.Index(out, "\n0 ") > strings.Index(out, "\n3 ") {
		t.Errorf("ranks not sorted:\n%s", out)
	}
	// A report without causal/flight telemetry renders none of those lines.
	if strings.Contains(out, "causal:") || strings.Contains(out, "flight:") {
		t.Errorf("pre-causal report rendered causal/flight lines:\n%s", out)
	}
}

// cannedCausalTelemetry is a verbatim /telemetry document from a run
// with -causal and -flight-dir armed, as the hub serves it (omitempty
// pointers present). No live server: the test decodes and renders it
// exactly as swapmon -once would.
const cannedCausalTelemetry = `{
  "now": 31.25,
  "epoch": 3,
  "active_set": [0, 1, 4],
  "quarantined": [2],
  "ranks": [
    {"rank": 0, "now": 31.25, "iters": 120, "iter_time": {"n": 120, "mean": 0.02, "p50": 0.02, "p90": 0.021, "p99": 0.022, "max": 0.025}, "rate": 960},
    {"rank": 1, "now": 31.25, "iters": 118, "iter_time": {"n": 118, "mean": 0.02, "p50": 0.02, "p90": 0.021, "p99": 0.022, "max": 0.024}, "rate": 955}
  ],
  "decisions": {"count": 5, "swap_verdicts": 2, "swaps": 1, "aborts": 1,
    "payback": {"n": 1, "mean": 4, "p50": 4, "p90": 4, "p99": 4, "max": 4},
    "latency": {"n": 5, "mean": 0.001, "p50": 0.001, "p90": 0.002, "p99": 0.002, "max": 0.002}},
  "causal": {"enabled": true, "max_clock": 4812, "sends": 2406},
  "flight": {"enabled": true, "buffered": 512, "observed": 9034, "dumps": 1,
    "last_dump": "swap abort: transfer timeout", "dir": "results/flight"}
}`

// TestRenderCausalFlight decodes the canned document and checks the new
// status lines: Lamport clock high-water mark, send count, flight ring
// occupancy and the last dump reason.
func TestRenderCausalFlight(t *testing.T) {
	var rep swaprt.TelemetryReport
	if err := json.Unmarshal([]byte(cannedCausalTelemetry), &rep); err != nil {
		t.Fatalf("decode canned telemetry: %v", err)
	}
	if rep.Causal == nil || rep.Flight == nil {
		t.Fatalf("canned document lost causal/flight on decode: %+v", rep)
	}
	var sb strings.Builder
	Render(&sb, rep)
	out := sb.String()
	for _, want := range []string{
		"causal: lamport max=4812 sends=2406",
		`flight: buffered=512 observed=9034 dumps=1 (last "swap abort: transfer timeout") dir=results/flight`,
		"quarantined=[2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}

	// Armed recorder with no dumps yet renders a placeholder, not noise.
	rep.Flight.Dumps = 0
	rep.Flight.LastDump = ""
	sb.Reset()
	Render(&sb, rep)
	if !strings.Contains(sb.String(), "dumps=- ") {
		t.Errorf("no-dump flight line missing placeholder:\n%s", sb.String())
	}

	// Disabled probes (enabled:false but object present) render nothing.
	rep.Causal.Enabled = false
	rep.Flight.Enabled = false
	sb.Reset()
	Render(&sb, rep)
	if strings.Contains(sb.String(), "causal:") || strings.Contains(sb.String(), "flight:") {
		t.Errorf("disabled probes still rendered:\n%s", sb.String())
	}
}

// TestCausalTelemetryRoundTrip pins the wire names the hub serves and
// the dashboard consumes: encode a report with probes, decode it, and
// require the canned-document keys to appear in the encoding.
func TestCausalTelemetryRoundTrip(t *testing.T) {
	rep := sampleReport()
	rep.Causal = &swaprt.CausalTelemetry{Enabled: true, MaxClock: 77, Sends: 38}
	rep.Flight = &swaprt.FlightTelemetry{Enabled: true, Buffered: 12, Observed: 90,
		Dumps: 2, LastDump: "world close", Dir: "/tmp/fl"}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"causal"`, `"max_clock":77`, `"sends":38`,
		`"flight"`, `"buffered":12`, `"last_dump":"world close"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("encoded report missing %s: %s", key, data)
		}
	}
	var back swaprt.TelemetryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Causal == nil || back.Causal.MaxClock != 77 || back.Flight == nil || back.Flight.Dumps != 2 {
		t.Fatalf("round trip lost probe fields: %+v", back)
	}

	// Pre-causal reports stay byte-compatible: no causal/flight keys at all.
	plain, err := json.Marshal(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "causal") || strings.Contains(string(plain), "flight") {
		t.Errorf("plain report leaked causal/flight keys: %s", plain)
	}
}
