// Command swapmon is a terminal dashboard for a live swapping run: it
// polls the /telemetry endpoint that swaprun or swapmgr serve on their
// -debug-addr and renders per-rank iteration-time quantiles, probe
// rates, anomaly detections, swap/abort history, payback distances and
// the quarantine/circuit state.
//
// Interactive mode redraws every -interval. The -once mode is the
// machine-checkable form: it polls until the report shows at least
// -min-swaps committed swaps and -min-anomalies detected slowdowns (or
// -timeout expires), prints the final report, and exits 0 on success,
// 1 otherwise — CI's mon-smoke gate. When the run armed the policy
// lens, -min-shadow requires that many shadow-policy decisions and
// -max-mispredict bounds the realized-payback mispredict fraction
// (negative disables) — CI's lens-smoke gate.
//
// Examples:
//
//	swaprun -ranks 4 -telemetry -debug-addr 127.0.0.1:7081 &
//	swapmon -addr 127.0.0.1:7081
//	swapmon -addr 127.0.0.1:7081 -once -min-swaps 1 -min-anomalies 1 -timeout 30s
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/cmd/swapmon/monclient"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7081", "debug endpoint host:port (or a full /telemetry URL)")
		interval = flag.Duration("interval", time.Second, "poll interval")
		once     = flag.Bool("once", false, "poll until the check passes or -timeout, print one report, exit 0/1")
		minSwaps   = flag.Int("min-swaps", 0, "with -once: require at least this many committed swaps")
		minAnoms   = flag.Int("min-anomalies", 0, "with -once: require at least this many detected anomalies")
		minShadow  = flag.Int("min-shadow", 0, "with -once: require at least this many shadow-policy decisions from the policy lens")
		maxMispred = flag.Float64("max-mispredict", -1, "with -once: require the lens mispredict fraction to be at most this (negative = no gate)")
		timeout    = flag.Duration("timeout", 30*time.Second, "with -once: give up after this long")
		clear      = flag.Bool("clear", true, "clear the terminal between interactive redraws")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		runOnce(client, *addr, *interval, *timeout, *minSwaps, *minAnoms, *minShadow, *maxMispred)
		return
	}

	for {
		rep, err := monclient.Fetch(client, *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapmon:", err)
		} else {
			if *clear {
				fmt.Print("\033[2J\033[H")
			}
			monclient.Render(os.Stdout, rep)
		}
		time.Sleep(*interval)
	}
}

// runOnce polls until the acceptance check passes or the deadline
// expires, prints the final report either way, and exits 0/1.
func runOnce(client *http.Client, addr string, interval, timeout time.Duration,
	minSwaps, minAnoms, minShadow int, maxMispredict float64) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		rep, err := monclient.Fetch(client, addr)
		if err == nil {
			lastErr = monclient.Check(rep, minSwaps, minAnoms)
			if lastErr == nil {
				lastErr = monclient.CheckLens(rep, minShadow, maxMispredict)
			}
			if lastErr == nil {
				monclient.Render(os.Stdout, rep)
				return
			}
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			if err == nil {
				monclient.Render(os.Stdout, rep)
			}
			fmt.Fprintln(os.Stderr, "swapmon: check failed:", lastErr)
			os.Exit(1)
		}
		time.Sleep(interval)
	}
}
