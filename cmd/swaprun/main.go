// Command swaprun drives a synthetic iterative application on the live
// swapping runtime (internal/swaprt over internal/mpi): a world of ranks
// in this process, an injectable load schedule that slows chosen "hosts"
// mid-run, and either an in-process swap manager or a remote swapmgr
// daemon. It is the end-to-end harness for the runtime half of the
// reproduction.
//
// Examples:
//
//	swaprun -ranks 4 -active 2 -iters 40 -inject 1@0.3:8
//	swaprun -ranks 6 -active 3 -policy safe -inject 0@0.5:4,2@1:6
//	swapmgr -addr 127.0.0.1:7070 &  swaprun -manager 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi/fault"
	"repro/internal/obs"
	"repro/internal/obs/obsflag"
	"repro/internal/swaprt"
	"repro/internal/swaprt/policylens"
)

// injection is one scheduled load event: after Delay, the host of Rank
// runs Factor times slower.
type injection struct {
	Rank   int
	Delay  time.Duration
	Factor float64
}

func parseInjections(spec string) ([]injection, error) {
	if spec == "" {
		return nil, nil
	}
	var out []injection
	for _, part := range strings.Split(spec, ",") {
		var rank int
		var secs, factor float64
		at := strings.Split(part, "@")
		if len(at) != 2 {
			return nil, fmt.Errorf("injection %q: want rank@seconds:factor", part)
		}
		colon := strings.Split(at[1], ":")
		if len(colon) != 2 {
			return nil, fmt.Errorf("injection %q: want rank@seconds:factor", part)
		}
		var err error
		if rank, err = strconv.Atoi(at[0]); err != nil {
			return nil, fmt.Errorf("injection %q: %v", part, err)
		}
		if secs, err = strconv.ParseFloat(colon[0], 64); err != nil {
			return nil, fmt.Errorf("injection %q: %v", part, err)
		}
		if factor, err = strconv.ParseFloat(colon[1], 64); err != nil {
			return nil, fmt.Errorf("injection %q: %v", part, err)
		}
		if factor < 1 {
			return nil, fmt.Errorf("injection %q: factor must be >= 1", part)
		}
		out = append(out, injection{Rank: rank, Delay: time.Duration(secs * float64(time.Second)), Factor: factor})
	}
	return out, nil
}

// injector tracks per-rank slowdown factors.
type injector struct {
	mu     sync.Mutex
	factor []float64
}

func (in *injector) slowdown(rank int) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.factor[rank]
}

func (in *injector) probe(rank int) float64 { return 1000 / in.slowdown(rank) }

func (in *injector) apply(i injection) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.factor[i.Rank] = i.Factor
}

func main() {
	var (
		ranks    = flag.Int("ranks", 4, "world size (actives + spares)")
		active   = flag.Int("active", 2, "active processes")
		iters    = flag.Int("iters", 40, "iterations")
		workMS   = flag.Float64("work", 20, "unloaded compute milliseconds per iteration per rank")
		state    = flag.Int("state", 4096, "extra registered state bytes per process")
		policy   = flag.String("policy", "greedy", "swap policy: greedy, safe or friendly")
		manager  = flag.String("manager", "", "remote swapmgr address (overrides -policy decisions locally)")
		inject   = flag.String("inject", "1@0.3:8", "load schedule: rank@seconds:factor[,...]; empty for none")
		handler  = flag.Duration("handler", 0, "swap-handler probe interval (0 = probe at swap points only)")
		tcpWorld = flag.Bool("tcp", false, "use the TCP transport between ranks instead of in-process")
		chaos    = flag.String("chaos", "", "fault plan, e.g. 'seed=7;die:rank=2,iter=3;mgrdown:after=2,count=6' (see internal/mpi/fault); empty for none")
		transfer = flag.Duration("transfer-timeout", 0, "per-leg state-transfer deadline before a swap aborts (0 = runtime default)")
		debug    = flag.String("debug-addr", "", "HTTP debug endpoint serving /metrics (Prometheus), /telemetry (JSON) and /healthz (e.g. 127.0.0.1:7081)")
		accel    = flag.Float64("accel", 1, "time acceleration: run the whole schedule (work, injections, backoffs, timeouts) on a virtual clock this many times faster than wall time")
		mgrStore = flag.String("mgr-store", "", "durable manager store directory: runs a crash-restartable in-process swapmgr (WAL + leader lease) instead of plain local decisions; required home for mgrkill/mgrrestart chaos")
		mgrTTL   = flag.Duration("mgr-lease-ttl", 2*time.Second, "manager leader-lease duration (virtual time); a restarted manager waits out the dead leader's lease")
	)
	traceFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	pol, err := core.Named(*policy)
	if err != nil {
		fatal(err)
	}
	if *accel <= 0 {
		fatal(fmt.Errorf("-accel must be positive, got %g", *accel))
	}
	// One virtual clock drives everything that waits: work spinning, load
	// injections, swap timeouts, retry backoffs, handler tickers and
	// telemetry timestamps. At -accel 1 it is the wall clock.
	var tm clock.Clock = clock.Real{}
	if *accel != 1 {
		tm = clock.NewScaled(*accel)
		log.Printf("accel: virtual time runs %gx wall time", *accel)
	}
	injections, err := parseInjections(*inject)
	if err != nil {
		fatal(err)
	}
	for _, i := range injections {
		if i.Rank < 0 || i.Rank >= *ranks {
			fatal(fmt.Errorf("injection rank %d out of world [0,%d)", i.Rank, *ranks))
		}
	}

	inj := &injector{factor: make([]float64, *ranks)}
	for i := range inj.factor {
		inj.factor[i] = 1
	}
	for _, i := range injections {
		i := i
		go func() {
			tm.Sleep(i.Delay)
			log.Printf("inject: host of rank %d now %gx slower", i.Rank, i.Factor)
			inj.apply(i)
		}()
	}

	var plan *fault.Plan
	if *chaos != "" {
		if plan, err = fault.Parse(*chaos); err != nil {
			fatal(err)
		}
		log.Printf("chaos: fault plan armed: %s", *chaos)
	}

	worldCfg := mpi.Config{Size: *ranks, TCP: *tcpWorld, Clock: tm, Causal: traceFlags.Causal}
	if plan != nil {
		// Only a non-nil plan goes into the interface field: a typed nil
		// would arm an injector that panics on first use.
		worldCfg.Fault = plan
	}
	world, err := mpi.NewWorldWithConfig(worldCfg)
	if err != nil {
		fatal(err)
	}

	tracer, err := traceFlags.Tracer(*ranks)
	if err != nil {
		fatal(err)
	}

	// One seconds view of the shared clock for the runtime and the
	// telemetry hub, so series timestamps line up with trace timestamps.
	secs := clock.Seconds(tm)

	var hub *swaprt.TelemetryHub
	if traceFlags.Telemetry {
		hub = swaprt.NewTelemetryHub(secs)
		// Telemetry rides on the swap handlers' periodic reports; give them
		// the telemetry cadence unless the user picked their own.
		if *handler == 0 {
			*handler = traceFlags.TelemetryInterval
		}
		world.SetSendLatencySampling(true)
	}
	if cz := world.Causal(); cz != nil {
		log.Printf("causal: Lamport clocks armed on %d ranks", *ranks)
		hub.SetCausalProbe(func() swaprt.CausalTelemetry {
			return swaprt.CausalTelemetry{Enabled: true, MaxClock: cz.MaxClock(), Sends: cz.Sends()}
		})
	}
	if rec := traceFlags.Recorder; rec != nil {
		log.Printf("flight: recorder armed, dumps go to %s", traceFlags.FlightDir)
		hub.SetFlightProbe(func() swaprt.FlightTelemetry {
			st := rec.Status()
			return swaprt.FlightTelemetry{Enabled: true, Buffered: st.Buffered,
				Observed: st.Observed, Dumps: st.Dumps, LastDump: st.LastDump, Dir: st.Dir}
		})
	}

	var lens *policylens.Lens
	if traceFlags.Lens {
		lens = policylens.New(policylens.Config{
			Tolerance: traceFlags.LensTolerance,
			Tracer:    tracer,
			Registry:  world.Metrics(),
			Clock:     secs,
		})
		log.Printf("lens: policy audit armed (shadow greedy/safe/friendly)")
		hub.SetLensProbe(lens.Report)
	}

	cfg := swaprt.Config{
		Active:          *active,
		Policy:          pol,
		Probe:           inj.probe,
		Clock:           secs,
		Time:            tm,
		Logf:            log.Printf,
		HandlerInterval: *handler,
		TransferTimeout: *transfer,
		Tracer:          tracer,
		Telemetry:       hub,
		Lens:            lens,
	}
	// A fault plan with mgrkill/mgrrestart rules needs a manager that can
	// actually die and recover; give it a durable store home if the user
	// did not name one.
	storeDir := *mgrStore
	if storeDir == "" && plan != nil && plan.HasManagerKills() {
		if storeDir, err = os.MkdirTemp("", "swapmgr-store-*"); err != nil {
			fatal(err)
		}
		defer os.RemoveAll(storeDir)
		log.Printf("mgr-store: chaos plan kills the manager; using temporary store %s", storeDir)
	}

	var primary swaprt.Decider
	var resolver func() (swaprt.Decider, error)
	var onCircuit func(transition, reason string)
	if storeDir != "" {
		// Crash-restartable manager: a supervisor runs WAL-backed swapmgr
		// incarnations over the store directory, fenced by a leader lease
		// on the virtual clock. The fault plan's kill rules crash it for
		// real; the resolver below re-finds the recovered leader.
		sup, err := swaprt.StartManagerSupervisor(swaprt.SupervisorConfig{
			Dir: storeDir, Policy: pol, LeaseTTL: *mgrTTL,
			Clock: tm, Tracer: tracer, Logf: log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		defer sup.Close()
		for i := 0; sup.Addr() == "" && i < 1000; i++ {
			tm.Sleep(2 * time.Millisecond)
		}
		if sup.Addr() == "" {
			fatal(fmt.Errorf("manager supervisor never started serving"))
		}
		log.Printf("mgr-store: durable swapmgr on %s (store %s, lease %s)", sup.Addr(), storeDir, *mgrTTL)
		if plan != nil {
			plan.SetManagerKiller(sup.Kill)
		}
		resolver = func() (swaprt.Decider, error) {
			d, err := sup.Resolve()
			if err != nil {
				return nil, err
			}
			if plan != nil {
				return swaprt.GatedDecider{Inner: d, Gate: plan.ManagerCall}, nil
			}
			return d, nil
		}
		onCircuit = sup.RecordCircuit
		// The lease is renewed in virtual time: at high -accel it spans only
		// a few wall milliseconds, so a cold-start scheduler hiccup can catch
		// it lapsed an instant before the renewal ticker lands. Retry briefly
		// rather than failing the run on startup jitter.
		for i := 0; ; i++ {
			if primary, err = resolver(); err == nil {
				break
			}
			if i >= 200 {
				fatal(err)
			}
			tm.Sleep(5 * time.Millisecond)
		}
	} else if *manager != "" {
		primary = swaprt.RemoteDecider{Addr: *manager}
		log.Printf("using remote swap manager at %s", *manager)
	} else if plan != nil {
		// Chaos without a daemon still needs a primary the plan can take
		// down, so local decisions stand in for the manager.
		primary = swaprt.NewLocalDecider(pol)
	}
	if primary != nil {
		if plan != nil && storeDir == "" {
			primary = swaprt.GatedDecider{Inner: primary, Gate: plan.ManagerCall}
		}
		resilient := &swaprt.ResilientDecider{
			Primary:       primary,
			Fallback:      swaprt.NewLocalDecider(pol),
			Resolver:      resolver,
			OnCircuit:     onCircuit,
			MaxAttempts:   2,
			FailThreshold: 2,
			ProbeInterval: 50 * time.Millisecond,
			Clock:         tm,
			Tracer:        tracer,
			Logf:          log.Printf,
			Metrics:       world.Metrics(),
		}
		defer resilient.Close()
		cfg.Decider = resilient
		hub.SetCircuitProbe(resilient.State)
	}

	if *debug != "" {
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.PromHandler(world.Metrics()))
		mux.Handle("/telemetry", swaprt.TelemetryHandler(hub))
		mux.Handle("/policy", policylens.Handler(lens))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		go func() {
			if err := http.Serve(dln, mux); err != nil {
				log.Printf("debug endpoint: %v", err)
			}
		}()
		log.Printf("debug endpoint on http://%s (/metrics /telemetry /policy /healthz)", dln.Addr())
	}

	start := time.Now()
	var mu sync.Mutex
	totalSwaps := 0
	corrupt := false
	stats, err := swaprt.RunWithStats(world, cfg, func(s *swaprt.Session) error {
		iter := 0
		acc := 0.0
		pad := make([]byte, *state)
		s.Register("iter", &iter)
		s.Register("acc", &acc)
		s.Register("pad", &pad)
		for !s.Done() && iter < *iters {
			if s.Active() {
				busyWait(tm, time.Duration(*workMS*inj.slowdown(s.Rank()))*time.Millisecond)
				v, err := s.Comm().AllReduceFloat64(mpi.OpSum, 1)
				if err != nil {
					return err
				}
				acc += v
				iter++
				if plan != nil {
					plan.Advance(s.Rank())
				}
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		mu.Lock()
		totalSwaps += s.Swaps()
		mu.Unlock()
		if s.Active() && s.Comm().Rank() == 0 {
			want := float64(*iters * *active)
			status := "OK"
			if acc != want {
				status = fmt.Sprintf("CORRUPT (acc=%g want=%g)", acc, want)
				mu.Lock()
				corrupt = true
				mu.Unlock()
			}
			log.Printf("finished %d iterations on rank %d: %s", iter, s.Rank(), status)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("completed %d iterations on %d/%d ranks in %.2fs with %d swap participations\n",
		*iters, *active, *ranks, time.Since(start).Seconds(), totalSwaps)
	fmt.Printf("runtime stats: %s\n", stats)
	if err := traceFlags.Write(tracer, log.Printf); err != nil {
		fatal(err)
	}
	if err := traceFlags.WriteMetrics(world.Metrics(), log.Printf); err != nil {
		fatal(err)
	}
	if corrupt {
		fatal(fmt.Errorf("numerical result corrupted; see log"))
	}
}

// busyWait spins for d of the injected clock's time: on a scaled clock
// the simulated compute compresses with everything else, keeping the
// work-to-timeout ratios of an accelerated run faithful to real time.
func busyWait(clk clock.Clock, d time.Duration) {
	end := clk.Now().Add(d)
	x := 1.0
	for clk.Now().Before(end) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-12
		}
	}
	_ = x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swaprun:", err)
	os.Exit(1)
}
