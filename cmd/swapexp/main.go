// Command swapexp regenerates the paper's figures: it runs the simulation
// sweeps behind Figures 1–9 of "Policies for Swapping MPI Processes"
// (HPDC 2003) and prints the data series the paper plots.
//
// Usage:
//
//	swapexp -fig 4                 # one figure, aligned text to stdout
//	swapexp -fig all -format csv   # every figure as CSV
//	swapexp -fig 7 -seeds 16       # more repetitions
//	swapexp -fig all -out results/ # one CSV file per figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/mpi"
	"repro/internal/mpi/fault"
	"repro/internal/obs/obsflag"
	"repro/internal/report"
	"repro/internal/swaprt"
	"repro/internal/swaprt/policylens"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure to regenerate: 1..9, an ablation/extension ID, 'all', 'ablations' or 'extensions'")
		seeds     = flag.Int("seeds", 0, "independent repetitions per point (0 = default)")
		iters     = flag.Int("iters", 0, "application iterations per run (0 = default)")
		seed      = flag.Int64("seed", 0, "base random seed (0 = default)")
		format    = flag.String("format", "text", "output format: text, csv, json or plot (ASCII chart)")
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		outDir    = flag.String("out", "", "write per-figure files into this directory instead of stdout")
		list      = flag.Bool("list", false, "list every experiment ID and exit")
		check     = flag.Bool("check", false, "run the full claim battery (report.Claims) and exit non-zero on failure")
		live      = flag.Bool("live", false, "run a small live-runtime demo (internal/swaprt over TCP) and print its stats")
		chaos     = flag.String("chaos", "", "fault plan for the live demo (see internal/mpi/fault); empty for none")
		accel     = flag.Float64("accel", 1, "with -live: run the runtime on a virtual clock this many times faster than wall time")
		scenarios = flag.Int("scenarios", 1, "with -live: sweep this many varied live scenarios (degrade rank/onset rotate) and print aggregate stats")
	)
	traceFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *accel <= 0 {
		fatal(fmt.Errorf("-accel must be positive, got %g", *accel))
	}
	var tm clock.Clock = clock.Real{}
	if *accel != 1 {
		tm = clock.NewScaled(*accel)
	}
	if *live {
		if *scenarios > 1 {
			if err := liveSweep(*chaos, tm, *accel, *scenarios); err != nil {
				fatal(err)
			}
			return
		}
		if err := liveDemo(traceFlags, *chaos, tm); err != nil {
			fatal(err)
		}
		return
	}
	if traceFlags.Enabled() {
		fatal(fmt.Errorf("-trace-out/-events-out apply to the live runtime demo; add -live (simulation sweeps trace via swapsim)"))
	}
	if *chaos != "" {
		fatal(fmt.Errorf("-chaos applies to the live runtime demo; add -live"))
	}
	if *accel != 1 || *scenarios != 1 {
		fatal(fmt.Errorf("-accel/-scenarios apply to the live runtime demo; add -live (simulation sweeps are already virtual-time)"))
	}

	if *check {
		opt := experiment.Options{Seeds: *seeds, Iterations: *iters, BaseSeed: *seed, Quick: *quick}
		passed, failed, err := report.Run(opt, time.Now(), os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\n%d passed, %d failed\n", passed, failed)
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("paper figures:")
		for _, id := range experiment.IDs() {
			fmt.Println("  " + id)
		}
		fmt.Println("ablations:")
		for _, id := range experiment.AblationIDs() {
			fmt.Println("  " + id)
		}
		fmt.Println("extensions:")
		for _, id := range experiment.ExtensionIDs() {
			fmt.Println("  " + id)
		}
		return
	}

	opt := experiment.Options{
		Seeds:      *seeds,
		Iterations: *iters,
		BaseSeed:   *seed,
		Quick:      *quick,
	}

	generators := experiment.All()
	for id, gen := range experiment.Ablations() {
		generators[id] = gen
	}
	for id, gen := range experiment.Extensions() {
		generators[id] = gen
	}

	var ids []string
	switch *figFlag {
	case "all":
		ids = experiment.IDs()
	case "ablations":
		ids = experiment.AblationIDs()
	case "extensions":
		ids = experiment.ExtensionIDs()
	default:
		id := *figFlag
		if len(id) <= 2 {
			id = "fig" + id
		}
		if _, ok := generators[id]; !ok {
			fmt.Fprintf(os.Stderr,
				"swapexp: unknown figure %q (want 1..9, an ablation ID, all, or ablations)\n", *figFlag)
			os.Exit(2)
		}
		ids = []string{id}
	}

	for _, id := range ids {
		fig := generators[id](opt)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, id+"."+ext(*format))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := write(fig, *format, f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		if err := write(fig, *format, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func ext(format string) string {
	switch format {
	case "text", "plot":
		return "txt"
	}
	return format
}

func write(fig *experiment.FigureResult, format string, f *os.File) error {
	if format == "plot" {
		return fig.Plot().Render(f)
	}
	tbl, err := fig.Table()
	if err != nil {
		return err
	}
	switch format {
	case "text":
		return tbl.WriteText(f)
	case "csv":
		return tbl.WriteCSV(f)
	case "json":
		return tbl.WriteJSON(f)
	}
	return fmt.Errorf("swapexp: unknown format %q", format)
}

// liveDemo complements the simulation sweeps with a miniature run of the
// real runtime: 4 ranks over the TCP transport, 2 active, a synthetic
// probe that makes rank 1's host collapse partway through, and a greedy
// policy that swaps it out. It prints the RunStats (including the MPI
// per-rank transport counters) so the instrumented path is exercised
// end to end from the command line. A chaos spec arms the fault layer
// and a resilient, fault-gated decider on top of the same demo.
func liveDemo(traceFlags *obsflag.Flags, chaos string, tm clock.Clock) error {
	const (
		ranks  = 4
		active = 2
		iters  = 30
	)
	var plan *fault.Plan
	if chaos != "" {
		var err error
		if plan, err = fault.Parse(chaos); err != nil {
			return err
		}
	}
	worldCfg := mpi.Config{Size: ranks, TCP: true, Clock: tm, Causal: traceFlags.Causal}
	if plan != nil {
		worldCfg.Fault = plan
	}
	world, err := mpi.NewWorldWithConfig(worldCfg)
	if err != nil {
		return err
	}
	tracer, err := traceFlags.Tracer(ranks)
	if err != nil {
		return err
	}
	iterCount := 0
	probe := func(rank int) float64 {
		// Rank 1's host degrades sharply after the first third of the run.
		if rank == 1 && iterCount > iters/3 {
			return 100
		}
		return 1000
	}
	var hub *swaprt.TelemetryHub
	if traceFlags.Telemetry {
		hub = swaprt.NewTelemetryHub(clock.Seconds(tm))
		world.SetSendLatencySampling(true)
	}
	if cz := world.Causal(); cz != nil {
		hub.SetCausalProbe(func() swaprt.CausalTelemetry {
			return swaprt.CausalTelemetry{Enabled: true, MaxClock: cz.MaxClock(), Sends: cz.Sends()}
		})
	}
	if rec := traceFlags.Recorder; rec != nil {
		hub.SetFlightProbe(func() swaprt.FlightTelemetry {
			st := rec.Status()
			return swaprt.FlightTelemetry{Enabled: true, Buffered: st.Buffered,
				Observed: st.Observed, Dumps: st.Dumps, LastDump: st.LastDump, Dir: st.Dir}
		})
	}
	var lens *policylens.Lens
	if traceFlags.Lens {
		lens = policylens.New(policylens.Config{
			Tolerance: traceFlags.LensTolerance,
			Tracer:    tracer,
			Registry:  world.Metrics(),
			Clock:     clock.Seconds(tm),
		})
		hub.SetLensProbe(lens.Report)
	}
	cfg := swaprt.Config{
		Active:    active,
		Policy:    core.Greedy(),
		Probe:     probe,
		Time:      tm,
		Tracer:    tracer,
		Telemetry: hub,
		Lens:      lens,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}
	if plan != nil {
		cfg.TransferTimeout = 500 * time.Millisecond
		resilient := &swaprt.ResilientDecider{
			Primary:       swaprt.GatedDecider{Inner: swaprt.NewLocalDecider(core.Greedy()), Gate: plan.ManagerCall},
			Fallback:      swaprt.NewLocalDecider(core.Greedy()),
			MaxAttempts:   2,
			FailThreshold: 2,
			ProbeInterval: 50 * time.Millisecond,
			Clock:         tm,
			Tracer:        tracer,
			Logf:          cfg.Logf,
			Metrics:       world.Metrics(),
		}
		defer resilient.Close()
		cfg.Decider = resilient
		fmt.Printf("live demo: chaos plan armed: %s\n", chaos)
	}
	fmt.Printf("live demo: %d ranks (TCP), %d active, %d iterations, greedy policy\n",
		ranks, active, iters)
	stats, err := swaprt.RunWithStats(world, cfg, func(s *swaprt.Session) error {
		iter := 0
		acc := 0.0
		s.Register("iter", &iter)
		s.Register("acc", &acc)
		for !s.Done() && iter < iters {
			if s.Active() {
				v, err := s.Comm().AllReduceFloat64(mpi.OpSum, 1)
				if err != nil {
					return err
				}
				acc += v
				iter++
				if plan != nil {
					plan.Advance(s.Rank())
				}
				if s.Comm().Rank() == 0 {
					iterCount = iter
				}
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("live demo stats: %s\n", stats)
	if hub != nil {
		rep := hub.Report()
		fmt.Printf("live telemetry: %d decisions (%d swap verdicts, %d committed), %d ranks observed\n",
			rep.Decisions.Count, rep.Decisions.SwapVerdicts, rep.Decisions.Swaps, len(rep.Ranks))
	}
	if lens != nil {
		rep := lens.Report()
		fmt.Printf("live lens: %d decisions, %d commits, %d realized (%d mispredicted), %d shadow decisions\n",
			rep.Decisions, rep.Commits, rep.Realized, rep.Mispredicts, rep.ShadowDecisions())
	}
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	if err := traceFlags.WriteMetrics(world.Metrics(), logf); err != nil {
		return err
	}
	return traceFlags.Write(tracer, logf)
}

// liveSweep runs n varied live-runtime scenarios back to back on the
// shared (usually scaled) clock and prints aggregate runtime statistics.
// Scenario i rotates which active rank's host degrades and when, so the
// sweep exercises swap-out of either active slot at many points of the
// run; a chaos spec arms the same deterministic fault plan in every
// scenario on top of that rotation. With -accel the virtual schedules
// compress, which is what makes a thousand-scenario sweep a
// coffee-break job instead of an overnight one.
func liveSweep(chaos string, tm clock.Clock, accel float64, n int) error {
	const (
		ranks  = 4
		active = 2
		iters  = 30
	)
	fmt.Printf("live sweep: %d scenarios, %d ranks (in-process), %d active, %d iters, accel %gx\n",
		n, ranks, active, iters, accel)
	wallStart := time.Now()
	var ok, failed, swaps, aborts, quarantined, decisions int
	var realized, mispredicts, shadowEvals, divergences int
	for i := 0; i < n; i++ {
		degradeRank := i % active
		onset := iters/4 + (i*7)%(iters/2)
		stats, lrep, err := liveScenario(chaos, tm, degradeRank, onset, ranks, active, iters)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "swapexp: scenario %d (degrade rank %d at iter %d): %v\n",
				i, degradeRank, onset, err)
			continue
		}
		ok++
		swaps += stats.Swaps
		aborts += stats.SwapAborts
		quarantined += stats.Quarantined
		decisions += stats.Decisions
		realized += lrep.Realized
		mispredicts += lrep.Mispredicts
		for _, s := range lrep.Shadow {
			shadowEvals += s.Decisions
			divergences += s.Decisions - s.Agreements
		}
		if (i+1)%100 == 0 {
			fmt.Printf("  %d/%d scenarios, %d swaps so far (%.1fs wall)\n",
				i+1, n, swaps, time.Since(wallStart).Seconds())
		}
	}
	fmt.Printf("live sweep done: %d ok, %d failed, %d swaps (%d aborted, %d quarantined), %d decisions in %.1fs wall\n",
		ok, failed, swaps, aborts, quarantined, decisions, time.Since(wallStart).Seconds())
	fmt.Printf("live sweep lens: %d paybacks realized (%d mispredicted), %d shadow evals (%d divergences)\n",
		realized, mispredicts, shadowEvals, divergences)
	if failed > 0 {
		return fmt.Errorf("%d/%d scenarios failed", failed, n)
	}
	return nil
}

// liveScenario is one sweep element: an in-process world whose
// degradeRank's host collapses at iteration onset, swapped by a greedy
// policy, optionally under a chaos plan and a resilient decider. Every
// scenario carries its own policy lens so the sweep doubles as a
// prediction-accuracy experiment; the lens report rides back alongside
// the run stats.
func liveScenario(chaos string, tm clock.Clock, degradeRank, onset, ranks, active, iters int) (swaprt.RunStats, policylens.Report, error) {
	var plan *fault.Plan
	if chaos != "" {
		var err error
		if plan, err = fault.Parse(chaos); err != nil {
			return swaprt.RunStats{}, policylens.Report{}, err
		}
	}
	worldCfg := mpi.Config{Size: ranks, Clock: tm}
	if plan != nil {
		worldCfg.Fault = plan
	}
	world, err := mpi.NewWorldWithConfig(worldCfg)
	if err != nil {
		return swaprt.RunStats{}, policylens.Report{}, err
	}
	iterCount := 0
	probe := func(rank int) float64 {
		if rank == degradeRank && iterCount > onset {
			return 100
		}
		return 1000
	}
	lens := policylens.New(policylens.Config{Clock: clock.Seconds(tm)})
	cfg := swaprt.Config{
		Active: active,
		Policy: core.Greedy(),
		Probe:  probe,
		Time:   tm,
		Lens:   lens,
	}
	if plan != nil {
		cfg.TransferTimeout = 2 * time.Second
		var primary swaprt.Decider = swaprt.GatedDecider{Inner: swaprt.NewLocalDecider(core.Greedy()), Gate: plan.ManagerCall}
		var resolver func() (swaprt.Decider, error)
		var onCircuit func(transition, reason string)
		if plan.HasManagerKills() {
			// The plan kills the manager for real: run a crash-restartable
			// supervisor over a per-scenario store so every scenario
			// exercises WAL replay and lease takeover from a cold directory.
			dir, err := os.MkdirTemp("", "swapexp-mgr-*")
			if err != nil {
				return swaprt.RunStats{}, policylens.Report{}, err
			}
			defer os.RemoveAll(dir)
			sup, err := swaprt.StartManagerSupervisor(swaprt.SupervisorConfig{
				Dir: dir, Policy: core.Greedy(), LeaseTTL: 250 * time.Millisecond, Clock: tm,
			})
			if err != nil {
				return swaprt.RunStats{}, policylens.Report{}, err
			}
			defer sup.Close()
			for i := 0; sup.Addr() == "" && i < 1000; i++ {
				tm.Sleep(2 * time.Millisecond)
			}
			if sup.Addr() == "" {
				return swaprt.RunStats{}, policylens.Report{}, fmt.Errorf("manager supervisor never started serving")
			}
			plan.SetManagerKiller(sup.Kill)
			resolver = func() (swaprt.Decider, error) {
				d, err := sup.Resolve()
				if err != nil {
					return nil, err
				}
				return swaprt.GatedDecider{Inner: d, Gate: plan.ManagerCall}, nil
			}
			onCircuit = sup.RecordCircuit
			// The lease spans only a few wall milliseconds on the scaled
			// clock; retry the first resolve briefly so startup scheduler
			// jitter cannot catch it lapsed before the renewal lands.
			for i := 0; ; i++ {
				if primary, err = resolver(); err == nil {
					break
				}
				if i >= 200 {
					return swaprt.RunStats{}, policylens.Report{}, err
				}
				tm.Sleep(5 * time.Millisecond)
			}
		}
		resilient := &swaprt.ResilientDecider{
			Primary:       primary,
			Fallback:      swaprt.NewLocalDecider(core.Greedy()),
			Resolver:      resolver,
			OnCircuit:     onCircuit,
			MaxAttempts:   2,
			FailThreshold: 2,
			ProbeInterval: 50 * time.Millisecond,
			Clock:         tm,
			Metrics:       world.Metrics(),
		}
		defer resilient.Close()
		cfg.Decider = resilient
	}
	var mu sync.Mutex
	var corrupt error
	stats, err := swaprt.RunWithStats(world, cfg, func(s *swaprt.Session) error {
		iter := 0
		acc := 0.0
		s.Register("iter", &iter)
		s.Register("acc", &acc)
		for !s.Done() && iter < iters {
			if s.Active() {
				v, err := s.Comm().AllReduceFloat64(mpi.OpSum, 1)
				if err != nil {
					return err
				}
				acc += v
				iter++
				if plan != nil {
					plan.Advance(s.Rank())
				}
				if s.Comm().Rank() == 0 {
					iterCount = iter
				}
			}
			if err := s.SwapPoint(); err != nil {
				return err
			}
		}
		// The soak's corruption oracle: every surviving active lane must
		// hold exactly the fault-free accumulator — a manager crash that
		// double-applied a swap or resurrected stale state shows up here.
		if s.Active() && acc != float64(iters*active) {
			mu.Lock()
			corrupt = fmt.Errorf("rank %d: corrupt accumulator %g, want %d", s.Rank(), acc, iters*active)
			mu.Unlock()
		}
		return nil
	})
	if err == nil {
		err = corrupt
	}
	return stats, lens.Report(), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swapexp:", err)
	os.Exit(1)
}
