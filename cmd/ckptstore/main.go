// Command ckptstore runs the central checkpoint store of the paper's
// checkpoint/restart technique: ranks write their registered state to it
// (Session.CheckpointTo) and a restarted run reads the state back
// (Session.RestoreFrom).
//
// Example:
//
//	ckptstore -addr 127.0.0.1:7080
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/swaprt"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7080", "listen address")
		quiet = flag.Bool("quiet", false, "suppress per-operation logging")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptstore:", err)
		os.Exit(1)
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	log.Printf("ckptstore: serving on %s", ln.Addr())
	if err := swaprt.NewStoreServer(logf).Serve(ln); err != nil {
		log.Fatalf("ckptstore: %v", err)
	}
}
