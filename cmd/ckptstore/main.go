// Command ckptstore runs the central checkpoint store of the paper's
// checkpoint/restart technique: ranks write their registered state to it
// (Session.CheckpointTo) and a restarted run reads the state back
// (Session.RestoreFrom).
//
// By default blobs live in memory and die with the process. With -dir
// each blob is a CRC-framed file written via temp+fsync+rename, so
// checkpoints survive a store restart and a torn write can never be
// served back as state.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight operations finish, and the process exits 0. Any other serve
// failure exits non-zero.
//
// Example:
//
//	ckptstore -addr 127.0.0.1:7080 -dir /var/lib/ckptstore
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/swaprt"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7080", "listen address")
		dir   = flag.String("dir", "", "durable blob directory (empty = in-memory)")
		quiet = flag.Bool("quiet", false, "suppress per-operation logging")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	srv := swaprt.NewStoreServer(logf)
	if *dir != "" {
		var err error
		srv, err = swaprt.NewStoreServerDir(*dir, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckptstore:", err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptstore:", err)
		os.Exit(1)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("ckptstore: %s: shutting down", sig)
		ln.Close()
	}()

	if *dir != "" {
		log.Printf("ckptstore: serving on %s (durable dir %s)", ln.Addr(), *dir)
	} else {
		log.Printf("ckptstore: serving on %s (in-memory)", ln.Addr())
	}
	if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("ckptstore: %v", err)
	}
	log.Printf("ckptstore: clean shutdown")
}
