// Command benchagg folds the repo's benchmark evidence into one
// schema-stable document, results/BENCH_summary.json, that CI uploads
// as an artifact: the live `go test -bench` text outputs named on the
// command line are parsed and aggregated per benchmark (min/median/max
// ns/op across -count repetitions, worst-case B/op and allocs/op), and
// the checked-in BENCH_*.json capsules — the curated before/after
// studies whose baselines no longer exist in the tree — ride along
// verbatim under "documents".
//
// It is also a gate: every benchmark matching -zero-alloc must report
// exactly 0 allocs/op in every run, mirroring the make bench-transport
// awk gate, and the named input files must actually contain benchmark
// lines (a compile error or -bench filter typo fails the aggregation
// instead of producing an empty "all green" summary).
//
// Usage:
//
//	benchagg -out results/BENCH_summary.json -docs 'BENCH_*.json' \
//	    -zero-alloc '^BenchmarkTCPSendDistinctRanks(Causal)?$' \
//	    results/bench-transport.txt results/bench-lens.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is the output schema. Field set and ordering are stable:
// downstream tooling (and humans diffing two CI artifacts) may rely on
// byte-identical output for identical inputs.
type Summary struct {
	Schema     string                     `json:"schema"` // "repro/bench-summary/v1"
	Benchmarks []Bench                    `json:"benchmarks"`
	Gates      []Gate                     `json:"gates"`
	Documents  map[string]json.RawMessage `json:"documents,omitempty"`
}

// Bench aggregates every run of one benchmark name (GOMAXPROCS suffix
// stripped) from one source file.
type Bench struct {
	Name     string  `json:"name"`
	Source   string  `json:"source"`
	Runs     int     `json:"runs"`
	MinNsOp  float64 `json:"min_ns_op"`
	MedNsOp  float64 `json:"median_ns_op"`
	MaxNsOp  float64 `json:"max_ns_op"`
	BOp      int64   `json:"b_op"`      // worst case across runs
	AllocsOp int64   `json:"allocs_op"` // worst case across runs
}

// Gate records one acceptance rule's verdict so the artifact carries
// the evidence, not just the exit code.
type Gate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkFoo-8   5000   123.4 ns/op   16 B/op   2 allocs/op
//
// The B/op and allocs/op columns appear only under -benchmem.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// run is one parsed benchmark execution.
type run struct {
	name     string
	source   string
	nsOp     float64
	bOp      int64
	allocsOp int64
}

// parseBench extracts every benchmark run from one -bench text output.
func parseBench(source string, text string) []run {
	var runs []run
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := run{name: m[1], source: source}
		r.nsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.bOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		runs = append(runs, r)
	}
	return runs
}

// aggregate groups runs by (source, name) into sorted Bench rows.
func aggregate(runs []run) []Bench {
	type key struct{ source, name string }
	groups := make(map[key][]run)
	for _, r := range runs {
		k := key{r.source, r.name}
		groups[k] = append(groups[k], r)
	}
	var out []Bench
	for k, rs := range groups {
		ns := make([]float64, len(rs))
		b := Bench{Name: k.name, Source: k.source, Runs: len(rs)}
		for i, r := range rs {
			ns[i] = r.nsOp
			if r.bOp > b.BOp {
				b.BOp = r.bOp
			}
			if r.allocsOp > b.AllocsOp {
				b.AllocsOp = r.allocsOp
			}
		}
		sort.Float64s(ns)
		b.MinNsOp = ns[0]
		b.MaxNsOp = ns[len(ns)-1]
		b.MedNsOp = ns[len(ns)/2]
		if len(ns)%2 == 0 {
			b.MedNsOp = (ns[len(ns)/2-1] + ns[len(ns)/2]) / 2
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// applyGates evaluates the acceptance rules over the aggregated rows.
func applyGates(benches []Bench, zeroAlloc *regexp.Regexp) []Gate {
	var gates []Gate
	if zeroAlloc != nil {
		matched, worst := 0, int64(0)
		var offender string
		for _, b := range benches {
			if !zeroAlloc.MatchString(b.Name) {
				continue
			}
			matched++
			if b.AllocsOp > worst {
				worst, offender = b.AllocsOp, b.Name
			}
		}
		g := Gate{Name: "zero-alloc", Pass: worst == 0 && matched > 0}
		switch {
		case matched == 0:
			g.Detail = fmt.Sprintf("no benchmark matched %q (filter typo or benchmarks never ran)", zeroAlloc)
		case worst != 0:
			g.Detail = fmt.Sprintf("%s reports %d allocs/op, want 0", offender, worst)
		default:
			g.Detail = fmt.Sprintf("%d benchmarks held 0 allocs/op", matched)
		}
		gates = append(gates, g)
	}
	gates = append(gates, Gate{
		Name: "benchmarks-ran", Pass: len(benches) > 0,
		Detail: fmt.Sprintf("%d aggregated benchmark rows", len(benches)),
	})
	return gates
}

func main() {
	var (
		out       = flag.String("out", "", "write the summary JSON here (default stdout)")
		docs      = flag.String("docs", "", "glob of checked-in BENCH_*.json capsules to embed verbatim")
		zeroAlloc = flag.String("zero-alloc", "", "regexp of benchmark names that must report 0 allocs/op in every run")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no bench output files named (want `go test -bench` text captures)"))
	}

	var zre *regexp.Regexp
	if *zeroAlloc != "" {
		var err error
		if zre, err = regexp.Compile(*zeroAlloc); err != nil {
			fatal(err)
		}
	}

	var runs []run
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		rs := parseBench(filepath.Base(path), string(text))
		if len(rs) == 0 {
			fatal(fmt.Errorf("%s contains no benchmark result lines", path))
		}
		runs = append(runs, rs...)
	}

	sum := Summary{Schema: "repro/bench-summary/v1", Benchmarks: aggregate(runs)}
	sum.Gates = applyGates(sum.Benchmarks, zre)

	if *docs != "" {
		paths, err := filepath.Glob(*docs)
		if err != nil {
			fatal(err)
		}
		sort.Strings(paths)
		sum.Documents = make(map[string]json.RawMessage, len(paths))
		for _, p := range paths {
			raw, err := os.ReadFile(p)
			if err != nil {
				fatal(err)
			}
			var compact json.RawMessage
			if err := json.Unmarshal(raw, &compact); err != nil {
				fatal(fmt.Errorf("%s: %v", p, err))
			}
			name := strings.TrimSuffix(filepath.Base(p), ".json")
			sum.Documents[name] = compact
		}
	}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	failed := 0
	for _, g := range sum.Gates {
		status := "ok"
		if !g.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchagg: gate %s: %s (%s)\n", g.Name, status, g.Detail)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchagg:", err)
	os.Exit(1)
}
