package main

import (
	"regexp"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTCPSendDistinctRanks-4   	    5000	       126.7 ns/op	     134 B/op	       0 allocs/op
BenchmarkTCPSendDistinctRanks-4   	    5000	       141.0 ns/op	     120 B/op	       0 allocs/op
BenchmarkTCPSendDistinctRanks-4   	    5000	       179.0 ns/op	     110 B/op	       0 allocs/op
BenchmarkLensDisabled-4           	88059078	        13.55 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBenchExtractsRuns(t *testing.T) {
	runs := parseBench("bench.txt", sampleBench)
	if len(runs) != 4 {
		t.Fatalf("parsed %d runs, want 4", len(runs))
	}
	if runs[0].name != "BenchmarkTCPSendDistinctRanks" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", runs[0].name)
	}
	if runs[0].nsOp != 126.7 || runs[0].bOp != 134 || runs[0].allocsOp != 0 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
}

func TestAggregateStats(t *testing.T) {
	benches := aggregate(parseBench("bench.txt", sampleBench))
	if len(benches) != 2 {
		t.Fatalf("aggregated %d rows, want 2", len(benches))
	}
	// Sorted by (source, name): LensDisabled before TCPSend.
	if benches[0].Name != "BenchmarkLensDisabled" {
		t.Fatalf("row order: %q first", benches[0].Name)
	}
	tcp := benches[1]
	if tcp.Runs != 3 || tcp.MinNsOp != 126.7 || tcp.MedNsOp != 141.0 || tcp.MaxNsOp != 179.0 {
		t.Fatalf("tcp stats = %+v", tcp)
	}
	if tcp.BOp != 134 {
		t.Fatalf("worst-case B/op = %d, want 134", tcp.BOp)
	}
}

func TestZeroAllocGate(t *testing.T) {
	benches := aggregate(parseBench("bench.txt", sampleBench))
	re := regexp.MustCompile(`^BenchmarkTCPSendDistinctRanks$`)

	gates := applyGates(benches, re)
	if len(gates) != 2 || !gates[0].Pass || !gates[1].Pass {
		t.Fatalf("clean input should pass both gates: %+v", gates)
	}

	// A regression to 1 alloc/op must flip the gate.
	dirty := aggregate(parseBench("bench.txt",
		"BenchmarkTCPSendDistinctRanks-4 5000 140.0 ns/op 72 B/op 1 allocs/op\n"))
	gates = applyGates(dirty, re)
	if gates[0].Pass {
		t.Fatalf("1 allocs/op passed the zero-alloc gate: %+v", gates[0])
	}

	// A filter that matches nothing must fail too, not vacuously pass.
	gates = applyGates(benches, regexp.MustCompile(`^BenchmarkTypo$`))
	if gates[0].Pass {
		t.Fatalf("empty match passed the zero-alloc gate: %+v", gates[0])
	}
}
